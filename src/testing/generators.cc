#include "testing/generators.h"

#include <algorithm>

#include "common/check.h"
#include "common/error.h"
#include "common/rng.h"
#include "matrix/coo.h"

namespace dtc {
namespace testing {

namespace {

/** Base row count per scale band (individual families perturb it). */
int64_t
baseDim(int scale, Rng& rng)
{
    switch (scale) {
      case 0:
        return rng.nextInt(17, 64);
      case 1:
        return rng.nextInt(200, 420);
      default:
        return rng.nextInt(1200, 2600);
    }
}

CsrMatrix
genEmptyRows(Rng& rng, int scale)
{
    // Leading, trailing and interior empty rows; every populated row
    // is isolated so several whole 16-row windows are empty.
    const int64_t n = baseDim(scale, rng);
    CooMatrix coo(n, n);
    const int64_t stride = rng.nextInt(17, 40); // > one window height
    for (int64_t r = stride; r < n; r += stride) {
        const int64_t deg = rng.nextInt(1, 4);
        for (int64_t d = 0; d < deg; ++d)
            coo.add(static_cast<int32_t>(r),
                    static_cast<int32_t>(rng.nextBounded(
                        static_cast<uint64_t>(n))),
                    rng.nextFloat(-1.0f, 1.0f));
    }
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genSingletonRows(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng);
    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r)
        coo.add(static_cast<int32_t>(r),
                static_cast<int32_t>(
                    rng.nextBounded(static_cast<uint64_t>(n))),
                rng.nextFloat(-1.0f, 1.0f));
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genPowerLawHub(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng);
    CooMatrix coo(n, n);
    // One near-dense hub row (the worst row window), then Zipf tails.
    const int64_t hub_deg = std::max<int64_t>(8, n * 3 / 4);
    for (int64_t d = 0; d < hub_deg; ++d)
        coo.add(0,
                static_cast<int32_t>(
                    rng.nextBounded(static_cast<uint64_t>(n))),
                rng.nextFloat(-1.0f, 1.0f));
    for (int64_t r = 1; r < n; ++r) {
        const int64_t deg = static_cast<int64_t>(
            rng.nextZipf(static_cast<uint64_t>(
                             std::min<int64_t>(n, 24)),
                         1.4));
        for (int64_t d = 0; d <= deg; ++d) {
            // Preferential attachment towards low column indices.
            const int64_t c = static_cast<int64_t>(
                rng.nextZipf(static_cast<uint64_t>(n), 1.1));
            coo.add(static_cast<int32_t>(r), static_cast<int32_t>(c),
                    rng.nextFloat(-1.0f, 1.0f));
        }
    }
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genBandedOdd(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng);
    // Band half-width deliberately not a multiple of the block width.
    const int64_t band = rng.nextInt(3, 13) | 1;
    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r) {
        const int64_t lo = std::max<int64_t>(0, r - band);
        const int64_t hi = std::min<int64_t>(n - 1, r + band);
        for (int64_t c = lo; c <= hi; ++c) {
            if (rng.nextBernoulli(0.6))
                coo.add(static_cast<int32_t>(r),
                        static_cast<int32_t>(c),
                        rng.nextFloat(-1.0f, 1.0f));
        }
    }
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genBlockDense(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng);
    CooMatrix coo(n, n);
    // Dense blocks whose origins straddle the 16x8 TC grid (offsets
    // chosen off-alignment) — some blocks 100% full so the DTC dense
    // tile path runs, some partial.
    const int64_t blocks = std::max<int64_t>(2, n / 40);
    for (int64_t bIdx = 0; bIdx < blocks; ++bIdx) {
        const int64_t h = rng.nextInt(8, 24);
        const int64_t w = rng.nextInt(5, 17);
        const int64_t r0 = rng.nextInt(0, std::max<int64_t>(0, n - h));
        const int64_t c0 = rng.nextInt(0, std::max<int64_t>(0, n - w));
        const bool full = rng.nextBernoulli(0.5);
        for (int64_t r = r0; r < std::min(n, r0 + h); ++r)
            for (int64_t c = c0; c < std::min(n, c0 + w); ++c)
                if (full || rng.nextBernoulli(0.7))
                    coo.add(static_cast<int32_t>(r),
                            static_cast<int32_t>(c),
                            rng.nextFloat(-1.0f, 1.0f));
    }
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genDuplicateColumns(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng);
    // All rows draw from a pool smaller than one block width, so SGT
    // condenses nearly everything onto the same block columns.
    const int64_t pool = rng.nextInt(2, 7);
    std::vector<int32_t> cols;
    for (int64_t i = 0; i < pool; ++i)
        cols.push_back(static_cast<int32_t>(
            rng.nextBounded(static_cast<uint64_t>(n))));
    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r) {
        const int64_t deg = rng.nextInt(1, pool);
        for (int64_t d = 0; d < deg; ++d)
            coo.add(static_cast<int32_t>(r),
                    cols[rng.nextBounded(cols.size())],
                    rng.nextFloat(-1.0f, 1.0f));
    }
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genSingleRowWide(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng) * 4;
    CooMatrix coo(1, n);
    const int64_t deg = rng.nextInt(1, std::min<int64_t>(n, 64));
    for (int64_t d = 0; d < deg; ++d)
        coo.add(0,
                static_cast<int32_t>(
                    rng.nextBounded(static_cast<uint64_t>(n))),
                rng.nextFloat(-1.0f, 1.0f));
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genSingleColTall(Rng& rng, int scale)
{
    const int64_t m = baseDim(scale, rng) * 4;
    CooMatrix coo(m, 1);
    for (int64_t r = 0; r < m; ++r)
        if (rng.nextBernoulli(0.4))
            coo.add(static_cast<int32_t>(r), 0,
                    rng.nextFloat(-1.0f, 1.0f));
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genAllZero(Rng& rng, int scale)
{
    // Cycle through the degenerate shape zoo: square, 0x0, 0xN, Mx0.
    switch (rng.nextBounded(4)) {
      case 0:
        return CsrMatrix(baseDim(scale, rng), baseDim(scale, rng));
      case 1:
        return CsrMatrix(0, 0);
      case 2:
        return CsrMatrix(0, baseDim(scale, rng));
      default:
        return CsrMatrix(baseDim(scale, rng), 0);
    }
}

CsrMatrix
genWideColumnSpan(Rng& rng, int scale)
{
    // Columns past INT16_MAX: int16 local arithmetic would overflow.
    // Rows stay few so the matrix is cheap despite the wide span.
    const int64_t span = 32768 + rng.nextInt(1, 4096);
    const int64_t rows = baseDim(std::min(scale, 1), rng);
    const int64_t n = std::max(rows, span);
    CooMatrix coo(n, n);
    const int64_t entries = rng.nextInt(8, 40);
    for (int64_t i = 0; i < entries; ++i) {
        const int64_t r = rng.nextBounded(
            static_cast<uint64_t>(rows));
        // Half the entries land beyond the int16 boundary.
        const int64_t c =
            rng.nextBernoulli(0.5)
                ? 32760 + rng.nextInt(0, span - 32761)
                : rng.nextInt(0, 1024);
        coo.add(static_cast<int32_t>(r), static_cast<int32_t>(c),
                rng.nextFloat(-1.0f, 1.0f));
    }
    // Pin the extremes so every seed truly crosses the boundary.
    coo.add(0, 0, 1.0f);
    coo.add(0, static_cast<int32_t>(n - 1), 1.0f);
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genZeroValues(Rng& rng, int scale)
{
    const int64_t n = baseDim(scale, rng);
    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r) {
        const int64_t deg = rng.nextInt(1, 6);
        for (int64_t d = 0; d < deg; ++d) {
            // Half the stored entries are exact structural zeros.
            const float v = rng.nextBernoulli(0.5)
                                ? 0.0f
                                : rng.nextFloat(-1.0f, 1.0f);
            coo.add(static_cast<int32_t>(r),
                    static_cast<int32_t>(rng.nextBounded(
                        static_cast<uint64_t>(n))),
                    v);
        }
    }
    return CsrMatrix::fromCoo(coo);
}

CsrMatrix
genNearDense(Rng& rng, int scale)
{
    // Keep the quadratic fill affordable at every scale.
    const int64_t n = std::min<int64_t>(baseDim(scale, rng), 160);
    CooMatrix coo(n, n);
    for (int64_t r = 0; r < n; ++r)
        for (int64_t c = 0; c < n; ++c)
            if (rng.nextBernoulli(0.92))
                coo.add(static_cast<int32_t>(r),
                        static_cast<int32_t>(c),
                        rng.nextFloat(-1.0f, 1.0f));
    return CsrMatrix::fromCoo(coo);
}

} // namespace

const std::vector<StructureFamily>&
allStructureFamilies()
{
    static const std::vector<StructureFamily> kAll = {
        StructureFamily::EmptyRows,
        StructureFamily::SingletonRows,
        StructureFamily::PowerLaw,
        StructureFamily::Banded,
        StructureFamily::BlockDense,
        StructureFamily::DuplicateColumns,
        StructureFamily::SingleRowWide,
        StructureFamily::SingleColTall,
        StructureFamily::AllZero,
        StructureFamily::WideColumnSpan,
        StructureFamily::ZeroValues,
        StructureFamily::NearDense,
    };
    return kAll;
}

const char*
structureFamilyName(StructureFamily f)
{
    switch (f) {
      case StructureFamily::EmptyRows:
        return "empty-rows";
      case StructureFamily::SingletonRows:
        return "singleton-rows";
      case StructureFamily::PowerLaw:
        return "power-law";
      case StructureFamily::Banded:
        return "banded";
      case StructureFamily::BlockDense:
        return "block-dense";
      case StructureFamily::DuplicateColumns:
        return "duplicate-columns";
      case StructureFamily::SingleRowWide:
        return "single-row-wide";
      case StructureFamily::SingleColTall:
        return "single-col-tall";
      case StructureFamily::AllZero:
        return "all-zero";
      case StructureFamily::WideColumnSpan:
        return "wide-column-span";
      case StructureFamily::ZeroValues:
        return "zero-values";
      case StructureFamily::NearDense:
        return "near-dense";
    }
    return "?";
}

StructureFamily
structureFamilyFromName(const std::string& name)
{
    for (StructureFamily f : allStructureFamilies())
        if (name == structureFamilyName(f))
            return f;
    DTC_RAISE(ErrorCode::InvalidInput,
              "unknown structure family: " << name);
}

CsrMatrix
generateStructure(StructureFamily family, uint64_t seed, int scale)
{
    DTC_CHECK_CODE(scale >= 0 && scale <= 2, ErrorCode::InvalidInput,
                   "scale must be 0, 1 or 2; got " << scale);
    // Decorrelate (family, seed) pairs so family F at seed S never
    // shares a stream with family F' at S.
    Rng rng(seed * 0x9e3779b97f4a7c15ull +
            static_cast<uint64_t>(family) * 0xbf58476d1ce4e5b9ull + 1);
    switch (family) {
      case StructureFamily::EmptyRows:
        return genEmptyRows(rng, scale);
      case StructureFamily::SingletonRows:
        return genSingletonRows(rng, scale);
      case StructureFamily::PowerLaw:
        return genPowerLawHub(rng, scale);
      case StructureFamily::Banded:
        return genBandedOdd(rng, scale);
      case StructureFamily::BlockDense:
        return genBlockDense(rng, scale);
      case StructureFamily::DuplicateColumns:
        return genDuplicateColumns(rng, scale);
      case StructureFamily::SingleRowWide:
        return genSingleRowWide(rng, scale);
      case StructureFamily::SingleColTall:
        return genSingleColTall(rng, scale);
      case StructureFamily::AllZero:
        return genAllZero(rng, scale);
      case StructureFamily::WideColumnSpan:
        return genWideColumnSpan(rng, scale);
      case StructureFamily::ZeroValues:
        return genZeroValues(rng, scale);
      case StructureFamily::NearDense:
        return genNearDense(rng, scale);
    }
    DTC_ASSERT(false);
    return CsrMatrix();
}

} // namespace testing
} // namespace dtc
