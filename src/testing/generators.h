/**
 * @file
 * Pathological structure generators for the conformance harness.
 *
 * src/datasets/generators synthesizes *realistic* matrices (the
 * classes the paper evaluates on).  This library deliberately targets
 * the opposite population: the adversarial shapes where format
 * pipelines (SGT condensation -> ME-TCF -> kernel traversal) break
 * silently — empty rows and whole empty windows, single-nonzero rows,
 * power-law hubs, dense blocks straddling the 16x8 TC grid, columns
 * condensed from a tiny pool, degenerate 1xN / Mx1 / all-zero shapes,
 * and column spans past INT16 (where narrow index arithmetic
 * overflows).  Every family is deterministic in (family, seed, scale).
 */
#ifndef DTC_TESTING_GENERATORS_H
#define DTC_TESTING_GENERATORS_H

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.h"

namespace dtc {
namespace testing {

/** Named adversarial structure families. */
enum class StructureFamily
{
    EmptyRows,       ///< Most rows (and whole 16-row windows) empty.
    SingletonRows,   ///< Exactly one nonzero per row.
    PowerLaw,        ///< Zipf degrees plus one near-dense hub row.
    Banded,          ///< Narrow band, width not a multiple of 8.
    BlockDense,      ///< Dense blocks straddling the 16x8 TC grid.
    DuplicateColumns,///< All rows draw from a tiny column pool.
    SingleRowWide,   ///< 1xN.
    SingleColTall,   ///< Mx1.
    AllZero,         ///< No nonzeros; shape may have 0 rows/cols.
    WideColumnSpan,  ///< Columns beyond INT16_MAX in one row.
    ZeroValues,      ///< Structural nonzeros whose value is 0.0f.
    NearDense,       ///< >= 90% fill.
};

/** Every family, in declaration order. */
const std::vector<StructureFamily>& allStructureFamilies();

/** Stable display name, e.g. "empty-rows". */
const char* structureFamilyName(StructureFamily f);

/**
 * Parses a family name (exact match against structureFamilyName).
 * Throws DtcError(InvalidInput) on an unknown name — used when
 * replaying corpus artifacts.
 */
StructureFamily structureFamilyFromName(const std::string& name);

/**
 * Generates one matrix of @p family.  @p scale 0 produces tiny
 * matrices (tens of rows — shrinker-friendly), 1 the default small
 * sizes (a few hundred rows), 2 medium sizes (a few thousand) for the
 * timed fuzzing mode.  Identical (family, seed, scale) always yields
 * an identical matrix.
 */
CsrMatrix generateStructure(StructureFamily family, uint64_t seed,
                            int scale = 1);

} // namespace testing
} // namespace dtc

#endif // DTC_TESTING_GENERATORS_H
