/**
 * @file
 * Fuzzing campaigns: the loops that drive generators -> oracle ->
 * shrinker -> corpus.
 *
 * Three campaign shapes:
 *   - smoke: one bounded, deterministic pass over every structure
 *     family x fixed seeds x the full oracle combo space, plus the
 *     metamorphic properties and a fault-injection sweep.  Fast
 *     enough for ctest; byte-identical output run to run.
 *   - timed: fresh seeds until a wall-clock budget expires (the CI
 *     nightly), shrinking and dumping every failure it finds.
 *   - replay: re-judges each checked-in corpus artifact so fixed bugs
 *     stay fixed.
 *
 * The fault sweep asserts the repo-wide error contract: an injected
 * fault may surface as a typed DtcError or a structured Refusal, or
 * the operation completes with a verified-correct result — silent
 * corruption is the only unacceptable outcome.
 */
#ifndef DTC_TESTING_FUZZ_H
#define DTC_TESTING_FUZZ_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "testing/generators.h"
#include "testing/oracle.h"
#include "testing/shrink.h"

namespace dtc {
namespace testing {

/** Campaign knobs shared by smoke and timed modes. */
struct FuzzOptions
{
    /** Generator scale for the matrices (see generateStructure). */
    int scale = 0;

    /** Structure seeds per family (smoke mode runs exactly these). */
    std::vector<uint64_t> seeds = {1, 2};

    int64_t denseWidth = 16;

    /** Axes swept per case; kernels empty = all. */
    OracleConfig oracle;

    /**
     * Directory for shrunk failure artifacts; empty disables
     * dumping.  Must already exist.
     */
    std::string corpusDir;

    /** Progress/diagnostic stream; nullptr silences the campaign. */
    std::ostream* log = nullptr;

    /** Shrink budget per failure (predicate evaluations). */
    int64_t shrinkEvaluations = 600;
};

/** Aggregate campaign outcome. */
struct FuzzStats
{
    int64_t cases = 0;    ///< Matrices judged.
    int64_t combos = 0;   ///< Oracle combos executed.
    int64_t passes = 0;
    int64_t refusals = 0;
    int64_t skips = 0;
    int64_t properties = 0; ///< Metamorphic checks executed.
    int64_t faultRuns = 0;  ///< Fault-injection runs executed.
    int64_t failures = 0;   ///< Oracle + property + fault failures.

    /** One line per failure (shrunk where applicable). */
    std::vector<std::string> failureLines;

    bool ok() const { return failures == 0; }

    std::string summary() const;

    void
    absorb(const FuzzStats& other)
    {
        cases += other.cases;
        combos += other.combos;
        passes += other.passes;
        refusals += other.refusals;
        skips += other.skips;
        properties += other.properties;
        faultRuns += other.faultRuns;
        failures += other.failures;
        failureLines.insert(failureLines.end(),
                            other.failureLines.begin(),
                            other.failureLines.end());
    }
};

/**
 * Judges one generated matrix across the full oracle config; on
 * failure shrinks the first failing combo and (when corpusDir is set)
 * dumps a replayable artifact.
 */
FuzzStats fuzzOneCase(StructureFamily family, uint64_t seed,
                      const FuzzOptions& opt);

/**
 * The bounded deterministic campaign: every family x opt.seeds at
 * opt.scale, plus metamorphic properties on a representative kernel
 * slice and the fault-injection sweep.
 */
FuzzStats runSmokeCampaign(const FuzzOptions& opt);

/**
 * Runs fresh (family, seed) cases until @p minutes of wall clock
 * elapse, starting from @p base_seed.  Output depends on timing; for
 * determinism use runSmokeCampaign.
 */
FuzzStats runTimedCampaign(const FuzzOptions& opt, double minutes,
                           uint64_t base_seed = 1000);

/**
 * Resilience soak: @p rounds independent seeded scenarios driving
 * the resilient runtime (runtime/runtime.h) with one armed fault,
 * a randomized-but-deterministic deadline (counted in cancellation
 * polls, so every round terminates without wall-clock dependence),
 * and the result guard randomly on or off.  Asserts the
 * typed-error-or-correct contract: each round either completes with
 * an oracle-verified result or throws a typed DtcError — silent
 * corruption or an untyped escape is a failure.  Deterministic for a
 * given (@p rounds, @p base_seed, opt.scale, opt.denseWidth).
 */
FuzzStats runSoakCampaign(const FuzzOptions& opt, int64_t rounds,
                          uint64_t base_seed = 5000);

/**
 * Serving-layer soak: @p rounds seeded scenarios driving the
 * multi-tenant SpmmService (serve/service.h) with randomized
 * concurrent clients — a small pool of matrices shared across
 * tenants (so the prepared cache sees hits, misses, and evictions),
 * randomized precisions, queue capacities, batch limits, deadlines,
 * and an occasionally armed fault.  Asserts the service-level
 * typed-error-or-correct contract: every submitted request either
 * yields an oracle-verified result (through the future) or a typed
 * DtcError (thrown at submit for admission rejections, through the
 * future otherwise).  Wall-clock deadlines make *which* outcome racy;
 * the contract holds for both.  Run under TSan in CI — the queue and
 * cache must be clean.
 */
FuzzStats runServeSoakCampaign(const FuzzOptions& opt, int64_t rounds,
                               uint64_t base_seed = 7000);

/**
 * Metamorphic property sweep (reorder invariance, linearity, scalar
 * scaling, serialize round trip) over every family at @p opt.seeds.
 */
FuzzStats runPropertySweep(const FuzzOptions& opt);

/**
 * Fault-injection sweep over the pipeline's DTC_FAULT_POINT sites:
 * each run must end in a typed DtcError, a structured Refusal, or a
 * verified-correct result.
 */
FuzzStats runFaultSweep(const FuzzOptions& opt);

/**
 * Re-judges every `.case` artifact in @p dir.  Checked-in artifacts
 * document *fixed* bugs (regression corpus), so an artifact whose
 * combo fails the oracle again counts as a campaign failure.
 */
FuzzStats replayCorpus(const std::string& dir, std::ostream* log);

/** Lists `.case` files directly inside @p dir, sorted. */
std::vector<std::string> listCaseFiles(const std::string& dir);

} // namespace testing
} // namespace dtc

#endif // DTC_TESTING_FUZZ_H
