#include "testing/shrink.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "matrix/coo.h"
#include "matrix/mm_io.h"
#include "testing/generators.h"
#include "testing/oracle.h"

namespace dtc {
namespace testing {

namespace {

/** Rebuilds @p m keeping only the flagged nonzeros (same shape). */
CsrMatrix
keepSubset(const CsrMatrix& m, const std::vector<char>& keep)
{
    std::vector<int64_t> row_ptr;
    row_ptr.reserve(static_cast<size_t>(m.rows()) + 1);
    std::vector<int32_t> col_idx;
    std::vector<float> values;
    row_ptr.push_back(0);
    for (int64_t r = 0; r < m.rows(); ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            if (!keep[static_cast<size_t>(k)])
                continue;
            col_idx.push_back(m.colIdx()[k]);
            values.push_back(m.values()[k]);
        }
        row_ptr.push_back(static_cast<int64_t>(col_idx.size()));
    }
    return CsrMatrix::fromParts(m.rows(), m.cols(),
                                std::move(row_ptr),
                                std::move(col_idx),
                                std::move(values));
}

/** Keeps rows [lo, hi); the result has hi-lo rows. */
CsrMatrix
restrictRows(const CsrMatrix& m, int64_t lo, int64_t hi)
{
    std::vector<int64_t> row_ptr;
    row_ptr.reserve(static_cast<size_t>(hi - lo) + 1);
    std::vector<int32_t> col_idx;
    std::vector<float> values;
    row_ptr.push_back(0);
    for (int64_t r = lo; r < hi; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            col_idx.push_back(m.colIdx()[k]);
            values.push_back(m.values()[k]);
        }
        row_ptr.push_back(static_cast<int64_t>(col_idx.size()));
    }
    return CsrMatrix::fromParts(hi - lo, m.cols(),
                                std::move(row_ptr),
                                std::move(col_idx),
                                std::move(values));
}

/** Keeps columns [lo, hi), rebased to start at 0. */
CsrMatrix
restrictCols(const CsrMatrix& m, int64_t lo, int64_t hi)
{
    std::vector<int64_t> row_ptr;
    row_ptr.reserve(static_cast<size_t>(m.rows()) + 1);
    std::vector<int32_t> col_idx;
    std::vector<float> values;
    row_ptr.push_back(0);
    for (int64_t r = 0; r < m.rows(); ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c < lo || c >= hi)
                continue;
            col_idx.push_back(static_cast<int32_t>(c - lo));
            values.push_back(m.values()[k]);
        }
        row_ptr.push_back(static_cast<int64_t>(col_idx.size()));
    }
    return CsrMatrix::fromParts(m.rows(), hi - lo,
                                std::move(row_ptr),
                                std::move(col_idx),
                                std::move(values));
}

/** Drops trailing all-zero rows and columns past the last nonzero. */
CsrMatrix
trimDims(const CsrMatrix& m)
{
    int64_t last_row = -1;
    int32_t last_col = -1;
    for (int64_t r = 0; r < m.rows(); ++r)
        if (m.rowPtr()[r + 1] > m.rowPtr()[r])
            last_row = r;
    for (int64_t k = 0; k < m.nnz(); ++k)
        last_col = std::max(last_col, m.colIdx()[k]);
    const int64_t rows = last_row + 1;
    const int64_t cols = static_cast<int64_t>(last_col) + 1;
    if (rows == m.rows() && cols == m.cols())
        return m;
    return restrictCols(restrictRows(m, 0, rows), 0, cols);
}

/** All values forced to 1.0f (pattern-only failure?). */
CsrMatrix
unitValues(const CsrMatrix& m)
{
    std::vector<int64_t> row_ptr = m.rowPtr();
    std::vector<int32_t> col_idx = m.colIdx();
    std::vector<float> values(static_cast<size_t>(m.nnz()), 1.0f);
    return CsrMatrix::fromParts(m.rows(), m.cols(),
                                std::move(row_ptr),
                                std::move(col_idx),
                                std::move(values));
}

/** Size order: fewer nonzeros first, then smaller shape. */
bool
smallerThan(const CsrMatrix& x, const CsrMatrix& y)
{
    if (x.nnz() != y.nnz())
        return x.nnz() < y.nnz();
    return x.rows() + x.cols() < y.rows() + y.cols();
}

const char*
precisionFromNameOrThrow(const std::string& name, Precision* out)
{
    static const Precision kAll[] = {Precision::Fp32, Precision::Tf32,
                                     Precision::Bf16, Precision::Fp16};
    for (Precision p : kAll)
        if (name == precisionName(p)) {
            *out = p;
            return precisionName(p);
        }
    DTC_RAISE(ErrorCode::InvalidInput,
              "unknown precision in artifact: " << name);
}

KernelKind
kernelKindFromNameOrThrow(const std::string& name)
{
    for (KernelKind kind : allKernelKinds())
        if (name == kernelKindName(kind))
            return kind;
    DTC_RAISE(ErrorCode::InvalidInput,
              "unknown kernel in artifact: " << name);
}

/** Replaces newlines so the detail fits one sidecar line. */
std::string
oneLine(std::string s)
{
    for (char& c : s)
        if (c == '\n' || c == '\r')
            c = ' ';
    return s;
}

} // namespace

ShrinkResult
shrinkMatrix(const CsrMatrix& failing,
             const FailurePredicate& still_fails,
             int64_t max_evaluations)
{
    DTC_CHECK_MSG(still_fails(failing),
                  "shrinkMatrix: the input does not satisfy the "
                  "failure predicate — nothing to minimize");

    ShrinkResult result;
    result.matrix = failing;
    result.evaluations = 1;

    // Accepts strictly-smaller candidates that still fail.
    auto try_adopt = [&](const CsrMatrix& candidate) -> bool {
        if (result.evaluations >= max_evaluations)
            return false;
        if (!smallerThan(candidate, result.matrix))
            return false;
        ++result.evaluations;
        if (!still_fails(candidate))
            return false;
        result.matrix = candidate;
        ++result.reductions;
        return true;
    };

    bool progress = true;
    while (progress && result.evaluations < max_evaluations) {
        progress = false;

        // 1. ddmin over nonzeros: remove complement-of-chunk at
        //    growing granularity.
        int64_t granularity = 2;
        while (result.matrix.nnz() >= 2 &&
               granularity <= result.matrix.nnz() &&
               result.evaluations < max_evaluations) {
            const int64_t nnz = result.matrix.nnz();
            const int64_t chunk = (nnz + granularity - 1) / granularity;
            bool reduced = false;
            for (int64_t lo = 0; lo < nnz && !reduced; lo += chunk) {
                const int64_t hi = std::min(nnz, lo + chunk);
                std::vector<char> keep(static_cast<size_t>(nnz), 1);
                for (int64_t k = lo; k < hi; ++k)
                    keep[static_cast<size_t>(k)] = 0;
                reduced = try_adopt(keepSubset(result.matrix, keep));
            }
            if (reduced) {
                progress = true;
                granularity = 2;
            } else {
                granularity *= 2;
            }
        }

        // 2. Row bisection: keep either half.
        if (result.matrix.rows() >= 2) {
            const int64_t mid = result.matrix.rows() / 2;
            if (try_adopt(restrictRows(result.matrix, 0, mid)) ||
                try_adopt(restrictRows(result.matrix, mid,
                                       result.matrix.rows())))
                progress = true;
        }

        // 3. Column bisection: keep either half.
        if (result.matrix.cols() >= 2) {
            const int64_t mid = result.matrix.cols() / 2;
            if (try_adopt(restrictCols(result.matrix, 0, mid)) ||
                try_adopt(restrictCols(result.matrix, mid,
                                       result.matrix.cols())))
                progress = true;
        }

        // 4. Trim dimensions to the occupied bounding box.
        if (try_adopt(trimDims(result.matrix)))
            progress = true;

        // 5. Canonicalize values (reported matrices read better).
        if (try_adopt(unitValues(result.matrix)))
            progress = true;
    }
    return result;
}

std::string
writeFailureArtifact(const std::string& dir, const std::string& stem,
                     const CsrMatrix& m, const FailureArtifact& info)
{
    const std::string base = dir + "/" + stem;
    bool has_mtx = false;
    if (m.rows() > 0 && m.cols() > 0) {
        writeMatrixMarketFile(base + ".mtx", m.toCoo());
        has_mtx = true;
    }
    const std::string case_path = base + ".case";
    std::ofstream f(case_path);
    DTC_CHECK_MSG(f.good(), "cannot open " << case_path
                                           << " for writing");
    f << "family " << info.family << "\n"
      << "structSeed " << info.structSeed << "\n"
      << "scale " << info.scale << "\n"
      << "kernel " << kernelKindName(info.kind) << "\n"
      << "precision " << precisionName(info.precision) << "\n"
      << "engineOn " << (info.engineOn ? 1 : 0) << "\n"
      << "simdOn " << (info.simdOn ? 1 : 0) << "\n"
      << "threads " << info.threads << "\n"
      << "denseWidth " << info.denseWidth << "\n"
      << "denseSeed " << info.denseSeed << "\n"
      << "rows " << m.rows() << "\n"
      << "cols " << m.cols() << "\n"
      << "hasMtx " << (has_mtx ? 1 : 0) << "\n"
      << "detail " << oneLine(info.detail) << "\n";
    DTC_CHECK_MSG(f.good(), "write to " << case_path << " failed");
    return case_path;
}

LoadedArtifact
loadFailureArtifact(const std::string& case_path)
{
    std::ifstream f(case_path);
    DTC_CHECK_CODE(f.good(), ErrorCode::InvalidInput,
                   "cannot open artifact " << case_path);
    LoadedArtifact out;
    bool has_mtx = false;
    int64_t rows = 0;
    int64_t cols = 0;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        std::string rest;
        std::getline(ls, rest);
        if (!rest.empty() && rest[0] == ' ')
            rest.erase(0, 1);
        try {
            if (key == "family")
                out.info.family = rest;
            else if (key == "structSeed")
                out.info.structSeed = std::stoull(rest);
            else if (key == "scale")
                out.info.scale = std::stoi(rest);
            else if (key == "kernel")
                out.info.kind = kernelKindFromNameOrThrow(rest);
            else if (key == "precision")
                precisionFromNameOrThrow(rest, &out.info.precision);
            else if (key == "engineOn")
                out.info.engineOn = std::stoi(rest) != 0;
            else if (key == "simdOn")
                out.info.simdOn = std::stoi(rest) != 0;
            else if (key == "threads")
                out.info.threads = std::stoi(rest);
            else if (key == "denseWidth")
                out.info.denseWidth = std::stoll(rest);
            else if (key == "denseSeed")
                out.info.denseSeed = std::stoull(rest);
            else if (key == "rows")
                rows = std::stoll(rest);
            else if (key == "cols")
                cols = std::stoll(rest);
            else if (key == "hasMtx")
                has_mtx = std::stoi(rest) != 0;
            else if (key == "detail")
                out.info.detail = rest;
            // Unknown keys are ignored for forward compatibility.
        } catch (const std::logic_error&) {
            DTC_RAISE(ErrorCode::CorruptData,
                      "malformed artifact line in " << case_path
                                                    << ": " << line);
        }
    }

    if (has_mtx) {
        std::string mtx_path = case_path;
        const std::string suffix = ".case";
        DTC_CHECK_CODE(mtx_path.size() > suffix.size() &&
                           mtx_path.compare(mtx_path.size() -
                                                suffix.size(),
                                            suffix.size(),
                                            suffix) == 0,
                       ErrorCode::InvalidInput,
                       "artifact path must end in .case: "
                           << case_path);
        mtx_path.replace(mtx_path.size() - suffix.size(),
                         suffix.size(), ".mtx");
        out.matrix = CsrMatrix::fromCoo(readMatrixMarketFile(mtx_path));
    } else if (!out.info.family.empty()) {
        out.matrix = generateStructure(
            structureFamilyFromName(out.info.family),
            out.info.structSeed, out.info.scale);
    } else {
        // No .mtx and no generator provenance: an explicit all-zero
        // shape (Matrix Market cannot express 0-dimension matrices).
        out.matrix = CsrMatrix(rows, cols);
    }
    return out;
}

bool
replayArtifact(const LoadedArtifact& artifact, std::string* detail)
{
    return comboFails(artifact.info.kind, artifact.info.precision,
                      artifact.info.engineOn, artifact.info.simdOn,
                      artifact.info.threads, artifact.matrix,
                      artifact.info.denseWidth,
                      artifact.info.denseSeed,
                      /*tolerance_safety=*/8.0, detail);
}

} // namespace testing
} // namespace dtc
