#include "testing/oracle.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/simd/simd.h"
#include "gpusim/arch.h"
#include "gpusim/cost_model.h"
#include "kernels/reference.h"

namespace dtc {
namespace testing {

namespace {

uint32_t
floatBits(float x)
{
    uint32_t u;
    std::memcpy(&u, &x, sizeof(u));
    return u;
}

/**
 * Per-case precomputed references: the double-accumulation ground
 * truth, per-row |A| sums for the error bound, and lazily one rounded
 * reference per precision (engine and thread count do not change these
 * bits — the equivalence suite pins both paths to identity).
 */
struct CaseRefs
{
    const CsrMatrix& a;
    const DenseMatrix& b;
    DenseMatrix refDouble;
    std::vector<double> rowAbsSum;
    double maxAbsB = 0.0;
    std::map<Precision, DenseMatrix> refRounded;

    CaseRefs(const CsrMatrix& a_in, const DenseMatrix& b_in)
        : a(a_in), b(b_in), refDouble(a_in.rows(), b_in.cols()),
          rowAbsSum(static_cast<size_t>(a_in.rows()), 0.0)
    {
        referenceSpmm(a, b, refDouble);
        for (int64_t r = 0; r < a.rows(); ++r)
            for (int64_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1];
                 ++k)
                rowAbsSum[static_cast<size_t>(r)] +=
                    std::fabs(static_cast<double>(a.values()[k]));
        for (size_t i = 0; i < b.size(); ++i)
            maxAbsB = std::max(
                maxAbsB, std::fabs(static_cast<double>(b.data()[i])));
    }

    const DenseMatrix&
    rounded(Precision p)
    {
        auto it = refRounded.find(p);
        if (it == refRounded.end()) {
            DenseMatrix ref(a.rows(), b.cols());
            referenceSpmmRounded(a, b, ref, p);
            it = refRounded.emplace(p, std::move(ref)).first;
        }
        return it->second;
    }
};

/** Core judgement against precomputed references. */
std::string
judgeAgainst(CaseRefs& refs, const DenseMatrix& got, Precision p,
             bool bit_exact, double safety)
{
    const CsrMatrix& a = refs.a;
    const DenseMatrix& b = refs.b;
    std::ostringstream os;
    if (got.rows() != a.rows() || got.cols() != b.cols()) {
        os << "mis-sized output: got " << got.rows() << "x"
           << got.cols() << ", want " << a.rows() << "x" << b.cols();
        return os.str();
    }

    // (a) precision-aware tolerance vs the double-accumulation truth
    // (bound shared with the runtime guard — see reference.h).
    for (int64_t r = 0; r < a.rows(); ++r) {
        const int64_t len = a.rowPtr()[r + 1] - a.rowPtr()[r];
        const double tol = spmmRowErrorBound(
            p, len, refs.rowAbsSum[static_cast<size_t>(r)],
            refs.maxAbsB, safety);
        for (int64_t j = 0; j < b.cols(); ++j) {
            const double g = got.at(r, j);
            const double want = refs.refDouble.at(r, j);
            if (!(std::fabs(g - want) <= tol)) { // catches NaN too
                os << "value out of tolerance at (" << r << "," << j
                   << "): got " << g << ", want " << want
                   << " +- " << tol << " (row len " << len << ", "
                   << precisionName(p) << ")";
                return os.str();
            }
        }
    }

    // (b) bit-level agreement with the rounded-operand reference.
    if (bit_exact) {
        const DenseMatrix& ref = refs.rounded(p);
        for (int64_t r = 0; r < got.rows(); ++r)
            for (int64_t j = 0; j < got.cols(); ++j)
                if (floatBits(got.at(r, j)) !=
                    floatBits(ref.at(r, j))) {
                    os << "bit mismatch at (" << r << "," << j
                       << "): got " << got.at(r, j) << ", want "
                       << ref.at(r, j) << " ("
                       << precisionName(p) << " rounded reference)";
                    return os.str();
                }
    }
    return std::string();
}

OracleOutcome
judgeCombo(CaseRefs& refs, KernelKind kind, Precision p,
           bool engine_on, bool simd_on, int threads,
           const OracleConfig& cfg)
{
    OracleOutcome out;
    out.kind = kind;
    out.precision = p;
    out.engineOn = engine_on;
    out.simdOn = simd_on;
    out.threads = threads;

    std::unique_ptr<SpmmKernel> kernel = makeKernelAt(kind, p);
    if (!kernel) {
        out.status = OracleOutcome::Status::Skipped;
        out.detail = "combo not expressible";
        return out;
    }

    engine::ScopedEngineMode em(engine_on);
    engine::simd::ScopedSimdMode sm(simd_on
                                        ? engine::simd::detectedIsa()
                                        : engine::simd::Isa::Off);
    ScopedNumThreads nt(threads);
    try {
        const Refusal r = kernel->prepare(refs.a);
        if (!r.ok()) {
            out.status = OracleOutcome::Status::Refused;
            out.detail = r.reason;
            return out;
        }
        DenseMatrix got(refs.a.rows(), refs.b.cols());
        // Sentinel-fill: a kernel that forgets a row (or writes the
        // wrong shape's worth of data) leaves NaNs the tolerance
        // check rejects.
        got.fill(std::numeric_limits<float>::quiet_NaN());
        kernel->compute(refs.b, got);
        const bool bit_exact = kernelTraits(kind).bitExactRounded;
        out.detail = judgeAgainst(refs, got, p, bit_exact,
                                  cfg.toleranceSafety);
        if (!out.detail.empty()) {
            out.status = OracleOutcome::Status::Failed;
            return out;
        }
        if (cfg.checkCost) {
            const CostModel cm(ArchSpec::rtx4090());
            const LaunchResult lr =
                kernel->cost(refs.b.cols(), cm);
            if (!(lr.timeMs >= 0.0) ||
                !std::isfinite(lr.timeMs)) {
                out.status = OracleOutcome::Status::Failed;
                std::ostringstream os;
                os << "cost() returned invalid timeMs " << lr.timeMs;
                out.detail = os.str();
                return out;
            }
        }
        out.status = OracleOutcome::Status::Pass;
    } catch (const std::exception& e) {
        out.status = OracleOutcome::Status::Failed;
        out.detail = std::string("exception: ") + e.what();
    }
    return out;
}

} // namespace

OracleConfig
OracleConfig::single(KernelKind kind, Precision p, bool engine_on,
                     bool simd_on, int threads)
{
    OracleConfig cfg;
    cfg.kernels = {kind};
    cfg.precisions = {p};
    cfg.engineModes = {engine_on};
    cfg.simdModes = {simd_on};
    cfg.threadCounts = {threads};
    return cfg;
}

std::string
OracleOutcome::describe() const
{
    std::ostringstream os;
    os << kernelKindName(kind) << " @" << precisionName(precision)
       << " engine=" << (engineOn ? "on" : "off")
       << " simd=" << (simdOn ? "on" : "off") << " threads="
       << threads;
    switch (status) {
      case Status::Pass:
        os << ": pass";
        break;
      case Status::Refused:
        os << ": refused";
        break;
      case Status::Skipped:
        os << ": skipped";
        break;
      case Status::Failed:
        os << ": FAILED";
        break;
    }
    if (!detail.empty())
        os << " — " << detail;
    return os.str();
}

const OracleOutcome*
OracleReport::firstFailure() const
{
    for (const OracleOutcome& o : outcomes)
        if (o.status == OracleOutcome::Status::Failed)
            return &o;
    return nullptr;
}

std::string
OracleReport::summary() const
{
    std::ostringstream os;
    os << combos() << " combos: " << passes << " pass, " << refusals
       << " refused, " << skips << " skipped, " << failures
       << " FAILED";
    return os.str();
}

DenseMatrix
makeDenseOperand(int64_t rows, int64_t cols, uint64_t seed)
{
    DenseMatrix b(rows, cols);
    Rng rng(seed * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull);
    b.fillRandom(rng, -1.0f, 1.0f);
    return b;
}

OracleReport
runOracle(const OracleCase& c, const OracleConfig& cfg)
{
    DTC_CHECK_MSG(c.denseWidth >= 0,
                  "denseWidth must be >= 0, got " << c.denseWidth);
    const DenseMatrix b =
        makeDenseOperand(c.a.cols(), c.denseWidth, c.seed);
    CaseRefs refs(c.a, b);

    const std::vector<KernelKind> kinds =
        cfg.kernels.empty() ? allKernelKinds() : cfg.kernels;

    OracleReport report;
    for (KernelKind kind : kinds)
        for (Precision p : cfg.precisions)
            for (bool engine_on : cfg.engineModes)
                for (bool simd_on : cfg.simdModes)
                    for (int threads : cfg.threadCounts) {
                        OracleOutcome out =
                            judgeCombo(refs, kind, p, engine_on,
                                       simd_on, threads, cfg);
                        switch (out.status) {
                          case OracleOutcome::Status::Pass:
                            ++report.passes;
                            break;
                          case OracleOutcome::Status::Refused:
                            ++report.refusals;
                            break;
                          case OracleOutcome::Status::Skipped:
                            ++report.skips;
                            break;
                          case OracleOutcome::Status::Failed:
                            ++report.failures;
                            break;
                        }
                        report.outcomes.push_back(std::move(out));
                    }
    return report;
}

bool
comboFails(KernelKind kind, Precision p, bool engine_on, bool simd_on,
           int threads, const CsrMatrix& a, int64_t dense_width,
           uint64_t seed, double tolerance_safety,
           std::string* detail)
{
    OracleCase c;
    c.a = a;
    c.denseWidth = dense_width;
    c.seed = seed;
    OracleConfig cfg =
        OracleConfig::single(kind, p, engine_on, simd_on, threads);
    cfg.toleranceSafety = tolerance_safety;
    const OracleReport report = runOracle(c, cfg);
    const OracleOutcome* failure = report.firstFailure();
    if (detail)
        *detail = failure ? failure->detail : std::string();
    return failure != nullptr;
}

std::string
judgeResult(const CsrMatrix& a, const DenseMatrix& b,
            const DenseMatrix& got, Precision p, bool bit_exact,
            double tolerance_safety)
{
    CaseRefs refs(a, b);
    return judgeAgainst(refs, got, p, bit_exact, tolerance_safety);
}

} // namespace testing
} // namespace dtc
