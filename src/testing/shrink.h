/**
 * @file
 * Failure minimization and replayable corpus artifacts.
 *
 * When the oracle flags a (matrix, kernel, precision, mode) tuple, the
 * raw matrix is rarely the story — shrinkMatrix runs delta debugging
 * (Zeller's ddmin over nonzeros, then row/column-range restriction,
 * dimension trimming and value canonicalization) against a caller
 * predicate until no smaller matrix still fails.  The result is dumped
 * as a Matrix Market file plus a `.case` sidecar (generator family,
 * seeds, kernel/precision/mode axes) under tests/corpus/, replayable
 * by `dtc_fuzz --replay` and by the fuzz_corpus_replay ctest.
 */
#ifndef DTC_TESTING_SHRINK_H
#define DTC_TESTING_SHRINK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/precision.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"

namespace dtc {
namespace testing {

/** True when the candidate matrix still triggers the failure. */
using FailurePredicate = std::function<bool(const CsrMatrix&)>;

/** Result of one shrink run. */
struct ShrinkResult
{
    CsrMatrix matrix;       ///< Smallest still-failing matrix found.
    int64_t evaluations = 0;///< Predicate calls spent.
    int64_t reductions = 0; ///< Accepted shrink steps.
};

/**
 * Minimizes @p failing while @p still_fails holds.  @p failing must
 * itself satisfy the predicate (throws DtcError(InvalidInput)
 * otherwise — a non-reproducing "failure" would shrink to garbage).
 * Deterministic; stops at a fixpoint or after @p max_evaluations
 * predicate calls.
 */
ShrinkResult shrinkMatrix(const CsrMatrix& failing,
                          const FailurePredicate& still_fails,
                          int64_t max_evaluations = 2000);

/** Everything needed to replay one failing combo. */
struct FailureArtifact
{
    std::string family;  ///< Structure family name ("" if external).
    uint64_t structSeed = 0;
    int scale = 1;
    KernelKind kind = KernelKind::CuSparse;
    Precision precision = Precision::Fp32;
    bool engineOn = true;
    bool simdOn = true;
    int threads = 1;
    int64_t denseWidth = 16;
    uint64_t denseSeed = 1;
    std::string detail;  ///< Oracle failure description.
};

/**
 * Writes `<dir>/<stem>.mtx` (skipped for 0-dimension shapes, which
 * Matrix Market cannot express) and `<dir>/<stem>.case`.  @p dir must
 * exist.  Returns the `.case` path.
 */
std::string writeFailureArtifact(const std::string& dir,
                                 const std::string& stem,
                                 const CsrMatrix& m,
                                 const FailureArtifact& info);

/** A reloaded artifact: the matrix plus its replay axes. */
struct LoadedArtifact
{
    CsrMatrix matrix;
    FailureArtifact info;
};

/**
 * Loads `<case_path>` (a `.case` file) and its sibling `.mtx`.  When
 * the `.mtx` is absent the matrix is regenerated from
 * (family, structSeed, scale).  Throws DtcError on malformed input.
 */
LoadedArtifact loadFailureArtifact(const std::string& case_path);

/**
 * Re-runs the artifact's combo through the oracle.  Returns true when
 * the failure still reproduces (@p detail receives the description).
 */
bool replayArtifact(const LoadedArtifact& artifact,
                    std::string* detail = nullptr);

} // namespace testing
} // namespace dtc

#endif // DTC_TESTING_SHRINK_H
