/**
 * @file
 * Differential conformance oracle.
 *
 * One judgement procedure for every kernel in the registry, swept
 * across the axes that have historically hidden bugs: operand
 * precision (Fp32/Tf32/Bf16/Fp16), engine on/off (ScopedEngineMode),
 * SIMD on/off (ScopedSimdMode — detected ISA vs dispatcher bypass)
 * and thread count (ScopedNumThreads).  For each expressible combo the
 * kernel either
 *
 *   - refuses the input with a structured Refusal (a PASS — refusing
 *     is modeled baseline behaviour, per the paper's Table 4), or
 *   - produces C = A * B that (a) lies within a precision-aware
 *     per-row error bound of the double-accumulation reference and
 *     (b) for every kernel whose traits declare bitExactRounded,
 *     matches referenceSpmmRounded bit for bit.
 *
 * Anything else — an exception, a wrong value, a mis-sized output — is
 * a FAILURE the fuzz driver hands to the shrinker.
 */
#ifndef DTC_TESTING_ORACLE_H
#define DTC_TESTING_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/precision.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {
namespace testing {

/** One input to judge: a sparse A plus the dense-operand settings. */
struct OracleCase
{
    CsrMatrix a;
    int64_t denseWidth = 16;
    uint64_t seed = 1; ///< Seeds B (and only B) deterministically.
    std::string label; ///< Human-readable provenance for reports.
};

/** Which slice of the combo space to sweep. */
struct OracleConfig
{
    /** Kernels to judge; empty means every registered kernel. */
    std::vector<KernelKind> kernels;

    std::vector<Precision> precisions = {Precision::Fp32,
                                         Precision::Tf32,
                                         Precision::Bf16,
                                         Precision::Fp16};

    std::vector<bool> engineModes = {true, false};

    /**
     * SIMD dispatcher sweep: true pins the detected ISA backend,
     * false bypasses the dispatcher entirely (Isa::Off — the
     * pre-SIMD inline loops).  Bitwise identity between the two is
     * part of the conformance contract.
     */
    std::vector<bool> simdModes = {true, false};

    std::vector<int> threadCounts = {1, 4, 8};

    /** Multiplier on the analytic error bound (slack for reordering). */
    double toleranceSafety = 8.0;

    /**
     * Also run a simulated launch (kernel->cost) per prepared kernel
     * and fail on exceptions / negative or non-finite times.
     */
    bool checkCost = false;

    /** Narrows every axis to one value — the shrinker's view. */
    static OracleConfig single(KernelKind kind, Precision p,
                               bool engine_on, bool simd_on,
                               int threads);
};

/** Verdict for one (kernel, precision, engine, simd, threads) combo. */
struct OracleOutcome
{
    enum class Status
    {
        Pass,    ///< Computed and matched the reference.
        Refused, ///< Structured Refusal — counted as conforming.
        Skipped, ///< Combo not expressible (makeKernelAt == nullptr).
        Failed,  ///< Wrong answer, mis-sized output, or exception.
    };

    KernelKind kind = KernelKind::CuSparse;
    Precision precision = Precision::Fp32;
    bool engineOn = true;
    bool simdOn = true;
    int threads = 1;
    Status status = Status::Pass;
    std::string detail; ///< Refusal reason / failure description.

    /** "Flash-LLM(v1) @tf32 engine=on simd=on threads=4: ..." */
    std::string describe() const;
};

/** Aggregate over one OracleCase. */
struct OracleReport
{
    std::vector<OracleOutcome> outcomes;
    int64_t passes = 0;
    int64_t refusals = 0;
    int64_t skips = 0;
    int64_t failures = 0;

    int64_t combos() const
    {
        return static_cast<int64_t>(outcomes.size());
    }

    bool ok() const { return failures == 0; }

    /** First failing outcome, or nullptr when ok(). */
    const OracleOutcome* firstFailure() const;

    /** One-line tally, e.g. "112 combos: 64 pass, 40 refused, ...". */
    std::string summary() const;
};

/**
 * Runs every configured combo against @p c.  Deterministic: the same
 * (case, config) always yields the same report.  Never throws for
 * kernel misbehaviour (that becomes a Failed outcome); throws only for
 * harness-level misuse (e.g. denseWidth < 0).
 */
OracleReport runOracle(const OracleCase& c, const OracleConfig& cfg);

/**
 * Judges one combo on (a, denseWidth, seed) and reports whether it
 * FAILS — the predicate shape the shrinker consumes.  @p detail, when
 * non-null, receives the failure description (empty on pass).
 */
bool comboFails(KernelKind kind, Precision p, bool engine_on,
                bool simd_on, int threads, const CsrMatrix& a,
                int64_t dense_width, uint64_t seed,
                double tolerance_safety = 8.0,
                std::string* detail = nullptr);

/**
 * Same judgement the oracle applies, exposed for reuse: checks @p got
 * against the references for @p a x @p b at precision @p p.  Returns
 * an empty string on conformance, else the failure description.
 * @p bit_exact additionally requires bitwise equality with
 * referenceSpmmRounded.
 */
std::string judgeResult(const CsrMatrix& a, const DenseMatrix& b,
                        const DenseMatrix& got, Precision p,
                        bool bit_exact, double tolerance_safety);

/** Deterministic dense operand for (@p rows x @p cols, @p seed). */
DenseMatrix makeDenseOperand(int64_t rows, int64_t cols,
                             uint64_t seed);

} // namespace testing
} // namespace dtc

#endif // DTC_TESTING_ORACLE_H
