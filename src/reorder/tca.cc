#include "reorder/tca.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"
#include "obs/metrics.h"
#include "reorder/minhash.h"

namespace dtc {

namespace {

/** Union-find with size tracking and a retired flag per root. */
class ClusterSets
{
  public:
    explicit ClusterSets(int64_t n)
        : parent(static_cast<size_t>(n)), size(static_cast<size_t>(n), 1),
          retired(static_cast<size_t>(n), false)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    int32_t
    find(int32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    /** Merges roots a and b; returns the new root. */
    int32_t
    merge(int32_t a, int32_t b)
    {
        if (size[a] < size[b])
            std::swap(a, b);
        parent[b] = a;
        size[a] += size[b];
        return a;
    }

    int64_t sizeOf(int32_t root) const { return size[root]; }
    bool isRetired(int32_t root) const { return retired[root]; }
    void retire(int32_t root) { retired[root] = true; }

  private:
    std::vector<int32_t> parent;
    std::vector<int64_t> size;
    std::vector<bool> retired;
};

struct ScoredPair
{
    double sim;
    int32_t a;
    int32_t b;

    bool
    operator<(const ScoredPair& o) const
    {
        // max-heap by similarity; deterministic tie-break.
        if (sim != o.sim)
            return sim < o.sim;
        if (a != o.a)
            return a > o.a;
        return b > o.b;
    }
};

/**
 * One hierarchy of Algorithm 1: LSH candidates -> priority queue ->
 * greedy merge with a size cap.  `setOf` maps an element to its
 * sorted column set; `weightOf` is the element's size contribution
 * (1 for rows, cluster count for clusters).
 */
template <typename SetOf>
int64_t
mergeHierarchy(int64_t num_elems, const SetOf& set_of,
               const std::vector<int64_t>& weight, int64_t size_limit,
               const TcaParams& p, uint64_t seed, ClusterSets& sets,
               int64_t* candidate_pairs_out,
               std::vector<uint32_t>* sigs_out = nullptr)
{
    MinHasher hasher(p.numHashes, seed);
    std::vector<uint32_t> sigs(static_cast<size_t>(num_elems) *
                               p.numHashes);
    {
        DTC_TRACE_SCOPE("tca.minhash");
        hasher.signatureBatch(
            num_elems,
            [&](int64_t i) {
                return std::pair<const int32_t*, const int32_t*>(
                    set_of(i));
            },
            sigs.data());
    }

    const size_t max_pairs =
        static_cast<size_t>(std::max<int64_t>(4096, num_elems * 24));
    std::vector<std::pair<int32_t, int32_t>> candidates;
    {
        DTC_TRACE_SCOPE("tca.lsh");
        candidates = lshCandidatePairs(sigs, num_elems, p.numHashes,
                                       p.bands, max_pairs);
    }
    *candidate_pairs_out = static_cast<int64_t>(candidates.size());

    DTC_TRACE_SCOPE("tca.merge");
    std::priority_queue<ScoredPair> queue;
    for (const auto& [a, b] : candidates) {
        auto [ab, ae] = set_of(a);
        auto [bb, be] = set_of(b);
        const double sim = jaccardSorted(ab, ae, bb, be);
        if (sim >= p.minSimilarity)
            queue.push({sim, a, b});
    }

    // Override sizes: union-find starts each element with weight 1,
    // but Hierarchy II elements weigh their row-cluster counts.
    // ClusterSets tracks abstract size via `weight` accounting here.
    std::vector<int64_t> root_weight(weight);

    while (!queue.empty()) {
        auto [sim, a, b] = queue.top();
        queue.pop();
        (void)sim;
        int32_t ra = sets.find(a);
        int32_t rb = sets.find(b);
        if (ra == rb || sets.isRetired(ra) || sets.isRetired(rb))
            continue;
        const int64_t combined = root_weight[ra] + root_weight[rb];
        int32_t root = sets.merge(ra, rb);
        root_weight[root] = combined;
        if (combined >= size_limit)
            sets.retire(root);
    }

    // Count resulting clusters.
    int64_t clusters = 0;
    for (int64_t i = 0; i < num_elems; ++i) {
        if (sets.find(static_cast<int32_t>(i)) == i)
            clusters++;
    }
    if (sigs_out)
        *sigs_out = std::move(sigs);
    return clusters;
}

} // namespace

TcaResult
tcaReorder(const CsrMatrix& m, const TcaParams& params)
{
    DTC_CHECK(params.blockHeight > 0 && params.smNum > 0);
    DTC_TRACE_SCOPE("tca.reorder");
    obs::ScopedTimerMs timer("tca.reorder_ms");
    const int64_t rows = m.rows();
    TcaResult res;
    res.permutation.resize(static_cast<size_t>(rows));
    if (rows == 0)
        return res;

    const auto& row_ptr = m.rowPtr();
    const auto& col_idx = m.colIdx();

    // ---- Hierarchy I: rows -> clusters of <= blockHeight rows. ----
    ClusterSets row_sets(rows);
    auto row_set = [&](int64_t r) {
        return std::pair<const int32_t*, const int32_t*>(
            col_idx.data() + row_ptr[r], col_idx.data() + row_ptr[r + 1]);
    };
    std::vector<int64_t> unit_weight(static_cast<size_t>(rows), 1);
    res.numClusters = mergeHierarchy(
        rows, row_set, unit_weight, params.blockHeight, params,
        params.seed, row_sets, &res.candidatePairsH1);

    // Gather clusters: root -> member rows (ascending row id).
    std::vector<int32_t> cluster_id(static_cast<size_t>(rows), -1);
    std::vector<std::vector<int32_t>> clusters;
    for (int64_t r = 0; r < rows; ++r) {
        int32_t root = row_sets.find(static_cast<int32_t>(r));
        if (cluster_id[root] < 0) {
            cluster_id[root] = static_cast<int32_t>(clusters.size());
            clusters.emplace_back();
        }
        clusters[cluster_id[root]].push_back(static_cast<int32_t>(r));
    }
    const int64_t nc = static_cast<int64_t>(clusters.size());

    // Order of clusters if Hierarchy II is disabled: as discovered.
    std::vector<int32_t> cluster_order(static_cast<size_t>(nc));
    std::iota(cluster_order.begin(), cluster_order.end(), 0);

    if (params.cacheAware && nc > 1) {
        // ---- Hierarchy II: clusters -> clusters-of-clusters. ----
        // Deduplicated column set per cluster, subsampled if huge.
        std::vector<std::vector<int32_t>> csets(
            static_cast<size_t>(nc));
        std::vector<int32_t> scratch;
        for (int64_t c = 0; c < nc; ++c) {
            scratch.clear();
            for (int32_t r : clusters[c]) {
                scratch.insert(scratch.end(),
                               col_idx.data() + row_ptr[r],
                               col_idx.data() + row_ptr[r + 1]);
            }
            std::sort(scratch.begin(), scratch.end());
            scratch.erase(
                std::unique(scratch.begin(), scratch.end()),
                scratch.end());
            if (static_cast<int64_t>(scratch.size()) >
                params.maxClusterSetSize) {
                // Uniform stride subsample keeps sets comparable.
                std::vector<int32_t> sampled;
                const double stride =
                    static_cast<double>(scratch.size()) /
                    static_cast<double>(params.maxClusterSetSize);
                for (int64_t i = 0; i < params.maxClusterSetSize; ++i)
                    sampled.push_back(scratch[static_cast<size_t>(
                        static_cast<double>(i) * stride)]);
                scratch = std::move(sampled);
            }
            csets[c] = scratch;
        }

        ClusterSets cc_sets(nc);
        auto cluster_set = [&](int64_t c) {
            return std::pair<const int32_t*, const int32_t*>(
                csets[c].data(), csets[c].data() + csets[c].size());
        };
        std::vector<int64_t> cweight(static_cast<size_t>(nc), 1);
        std::vector<uint32_t> cluster_sigs;
        res.numSuperClusters = mergeHierarchy(
            nc, cluster_set, cweight, params.smNum, params,
            params.seed ^ 0x5eed5eedull, cc_sets,
            &res.candidatePairsH2, &cluster_sigs);

        // Order clusters grouped by super-cluster.
        std::vector<int32_t> cc_id(static_cast<size_t>(nc), -1);
        std::vector<std::vector<int32_t>> supers;
        for (int64_t c = 0; c < nc; ++c) {
            int32_t root = cc_sets.find(static_cast<int32_t>(c));
            if (cc_id[root] < 0) {
                cc_id[root] = static_cast<int32_t>(supers.size());
                supers.emplace_back();
            }
            supers[cc_id[root]].push_back(static_cast<int32_t>(c));
        }

        // Within a super-cluster, chain clusters by similarity
        // (greedy nearest neighbour) so that the 16-row windows that
        // straddle cluster boundaries still see similar columns.
        // Similarity comes from the Hierarchy-II MinHash signatures
        // (matching-slot fraction estimates Jaccard): O(numHashes)
        // per candidate instead of O(|set|) exact intersection, which
        // made the greedy chain O(k^2 * setsize) per super-cluster.
        const int nh = params.numHashes;
        auto sigSimilarity = [&](int32_t ca, int32_t cb) {
            if (csets[ca].empty() || csets[cb].empty())
                return 0.0; // empty all-ones signatures never match
            const uint32_t* sa = cluster_sigs.data() +
                                 static_cast<size_t>(ca) * nh;
            const uint32_t* sb = cluster_sigs.data() +
                                 static_cast<size_t>(cb) * nh;
            int match = 0;
            for (int i = 0; i < nh; ++i)
                match += (sa[i] == sb[i]) ? 1 : 0;
            return static_cast<double>(match) /
                   static_cast<double>(nh);
        };
        auto chainOrder = [&](std::vector<int32_t>& members) {
            if (members.size() < 3)
                return;
            std::vector<int32_t> chain;
            chain.reserve(members.size());
            std::vector<bool> used(members.size(), false);
            size_t cur = 0;
            used[0] = true;
            chain.push_back(members[0]);
            for (size_t step = 1; step < members.size(); ++step) {
                double best_sim = -1.0;
                size_t best = 0;
                for (size_t j = 0; j < members.size(); ++j) {
                    if (used[j])
                        continue;
                    const double sim =
                        sigSimilarity(members[cur], members[j]);
                    if (sim > best_sim) {
                        best_sim = sim;
                        best = j;
                    }
                }
                used[best] = true;
                chain.push_back(members[best]);
                cur = best;
            }
            members = std::move(chain);
        };

        cluster_order.clear();
        DTC_TRACE_SCOPE("tca.chain");
        for (auto& s : supers) {
            chainOrder(s);
            cluster_order.insert(cluster_order.end(), s.begin(),
                                 s.end());
        }
    } else {
        res.numSuperClusters = nc;
    }

    // Emit the permutation: rows grouped by cluster, clusters by
    // super-cluster.
    size_t pos = 0;
    for (int32_t c : cluster_order)
        for (int32_t r : clusters[c])
            res.permutation[pos++] = r;
    DTC_ASSERT(pos == res.permutation.size());
    static obs::Counter& reorders =
        obs::metrics::counter("tca.reorders");
    static obs::Counter& clusters_out =
        obs::metrics::counter("tca.clusters");
    static obs::Counter& pairs =
        obs::metrics::counter("tca.candidate_pairs");
    reorders.add(1);
    clusters_out.add(static_cast<uint64_t>(res.numClusters));
    pairs.add(static_cast<uint64_t>(res.candidatePairsH1 +
                                    res.candidatePairsH2));
    return res;
}

} // namespace dtc
