/**
 * @file
 * Louvain community detection — the modularity-based reordering
 * baseline of Fig. 13 (paper reference [46]).
 *
 * Standard multi-level Louvain: repeated local-moving passes that
 * greedily move nodes to the neighbouring community with the best
 * modularity gain, followed by graph aggregation, until modularity
 * stops improving.  The reordering orders rows by final community,
 * which improves cache behaviour but is blind to TC-block geometry —
 * exactly the gap TCA closes.
 */
#ifndef DTC_REORDER_LOUVAIN_H
#define DTC_REORDER_LOUVAIN_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** Tuning knobs for Louvain. */
struct LouvainParams
{
    int maxLevels = 4;          ///< Aggregation levels.
    int maxPassesPerLevel = 8;  ///< Local-moving sweeps per level.
    double minGain = 1e-7;      ///< Stop when total gain drops below.
    uint64_t seed = 0x10aull;
};

/** Result of a Louvain run. */
struct LouvainResult
{
    /** Row permutation grouping rows by community. */
    std::vector<int32_t> permutation;

    /** Final community of each original row. */
    std::vector<int32_t> community;

    /** Number of communities found. */
    int64_t numCommunities = 0;

    /** Final modularity value. */
    double modularity = 0.0;
};

/**
 * Runs Louvain on the structure of @p m (treated as an undirected
 * unweighted graph; the pattern is symmetrized internally).
 * @pre square matrix.
 */
LouvainResult louvainReorder(const CsrMatrix& m,
                             const LouvainParams& params = {});

} // namespace dtc

#endif // DTC_REORDER_LOUVAIN_H
