/**
 * @file
 * MinHash signatures, LSH candidate generation and exact Jaccard —
 * the similarity machinery behind TCU-Cache-Aware reordering
 * (paper Section 4.3, Algorithm 1 lines 2 and 16).
 *
 * Rows (or clusters of rows) are treated as sets of column indices.
 * MinHash compresses each set into k signature slots; banding the
 * signature (LSH) yields candidate pairs whose exact Jaccard index is
 * then computed on the sorted sets.  The same machinery serves both
 * hierarchies: Hierarchy I hashes individual rows, Hierarchy II
 * hashes the deduplicated column sets of whole row clusters.
 */
#ifndef DTC_REORDER_MINHASH_H
#define DTC_REORDER_MINHASH_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace dtc {

/** MinHash signature generator with k independent hash functions. */
class MinHasher
{
  public:
    MinHasher(int num_hashes, uint64_t seed);

    int numHashes() const { return nHashes; }

    /**
     * Writes the @p num_hashes signature of the set
     * [@p begin, @p end) into @p out.  Empty sets get all-ones
     * signatures (never similar to anything).
     */
    void signature(const int32_t* begin, const int32_t* end,
                   uint32_t* out) const;

    /**
     * Computes the signatures of @p num_sets sets in parallel (the
     * hasher is immutable and each set writes a disjoint slice of
     * @p out, so results are identical for any thread count).
     * @p set_of maps a set index to its [begin, end) element range;
     * set i lands at @p out + i * numHashes().
     */
    void signatureBatch(
        int64_t num_sets,
        const std::function<std::pair<const int32_t*, const int32_t*>(
            int64_t)>& set_of,
        uint32_t* out) const;

  private:
    int nHashes;
    /** Per-hash multiply/xor constants. */
    std::vector<uint64_t> mulA;
    std::vector<uint64_t> mulB;
};

/**
 * Exact Jaccard index of two ascending-sorted sets.
 * Returns 0 for two empty sets.
 */
double jaccardSorted(const int32_t* a_begin, const int32_t* a_end,
                     const int32_t* b_begin, const int32_t* b_end);

/**
 * LSH banding: groups sets whose signature agrees on any band of
 * (num_hashes / bands) consecutive slots, and emits each co-banded
 * pair once.  @p max_pairs caps the output (dense buckets are
 * truncated pairwise-adjacently so the merge queue stays linear).
 *
 * @param signatures  num_sets * num_hashes slots, set-major
 */
std::vector<std::pair<int32_t, int32_t>>
lshCandidatePairs(const std::vector<uint32_t>& signatures,
                  int64_t num_sets, int num_hashes, int bands,
                  size_t max_pairs);

} // namespace dtc

#endif // DTC_REORDER_MINHASH_H
