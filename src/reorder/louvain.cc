#include "reorder/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"

namespace dtc {

namespace {

/** Adjacency in flat arrays with edge weights. */
struct Graph
{
    std::vector<int64_t> offset;
    std::vector<int32_t> adj;
    std::vector<double> weight;
    /** Self-loop weight per node (aggregated internal edges). */
    std::vector<double> selfLoop;
    double totalWeight = 0.0; // 2m (both directions + self loops)

    int64_t nodes() const
    {
        return static_cast<int64_t>(offset.size()) - 1;
    }
};

/** Builds the symmetrized unweighted graph of a CSR pattern. */
Graph
buildGraph(const CsrMatrix& m)
{
    const int64_t n = m.rows();
    // Count degree of the symmetrized pattern (dedup handled by
    // aggregating duplicate edge weights; harmless for modularity).
    std::vector<int64_t> deg(static_cast<size_t>(n), 0);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c == r)
                continue;
            deg[r]++;
            deg[c]++;
        }
    }
    Graph g;
    g.offset.resize(static_cast<size_t>(n) + 1, 0);
    for (int64_t i = 0; i < n; ++i)
        g.offset[i + 1] = g.offset[i] + deg[i];
    g.adj.resize(static_cast<size_t>(g.offset[n]));
    g.weight.assign(g.adj.size(), 1.0);
    g.selfLoop.assign(static_cast<size_t>(n), 0.0);

    std::vector<int64_t> cursor(g.offset.begin(), g.offset.end() - 1);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c == r) {
                g.selfLoop[r] += 1.0;
                continue;
            }
            g.adj[cursor[r]++] = c;
            g.adj[cursor[c]++] = static_cast<int32_t>(r);
        }
    }
    for (int64_t i = 0; i < n; ++i)
        g.totalWeight += g.selfLoop[i];
    g.totalWeight += static_cast<double>(g.adj.size());
    return g;
}

/** One level of local moving; returns community of each node. */
std::vector<int32_t>
localMoving(const Graph& g, const LouvainParams& p, Rng& rng,
            double* modularity_out)
{
    const int64_t n = g.nodes();
    std::vector<int32_t> comm(static_cast<size_t>(n));
    std::iota(comm.begin(), comm.end(), 0);

    // Weighted degree per node and total per community.
    std::vector<double> wdeg(static_cast<size_t>(n), 0.0);
    for (int64_t u = 0; u < n; ++u) {
        wdeg[u] = g.selfLoop[u];
        for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k)
            wdeg[u] += g.weight[k];
    }
    std::vector<double> comm_tot(wdeg);

    const double two_m = std::max(g.totalWeight, 1.0);
    std::vector<int32_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    std::unordered_map<int32_t, double> nbr_weight;
    for (int pass = 0; pass < p.maxPassesPerLevel; ++pass) {
        int64_t moves = 0;
        for (int32_t u : order) {
            const int32_t cu = comm[u];
            nbr_weight.clear();
            for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k)
                nbr_weight[comm[g.adj[k]]] += g.weight[k];

            // Remove u from its community.
            comm_tot[cu] -= wdeg[u];
            const double w_cu = nbr_weight.count(cu)
                                    ? nbr_weight[cu]
                                    : 0.0;

            int32_t best = cu;
            double best_gain = w_cu - comm_tot[cu] * wdeg[u] / two_m;
            for (const auto& [c, w] : nbr_weight) {
                if (c == cu)
                    continue;
                const double gain =
                    w - comm_tot[c] * wdeg[u] / two_m;
                if (gain > best_gain + p.minGain) {
                    best_gain = gain;
                    best = c;
                }
            }
            comm_tot[best] += wdeg[u];
            if (best != cu) {
                comm[u] = best;
                moves++;
            }
        }
        if (moves == 0)
            break;
    }

    if (modularity_out) {
        // Q = sum_c (in_c / 2m - (tot_c / 2m)^2).
        std::unordered_map<int32_t, double> in_c, tot_c;
        for (int64_t u = 0; u < n; ++u) {
            tot_c[comm[u]] += wdeg[u];
            in_c[comm[u]] += g.selfLoop[u];
            for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k)
                if (comm[g.adj[k]] == comm[u])
                    in_c[comm[u]] += g.weight[k];
        }
        double q = 0.0;
        for (const auto& [c, tot] : tot_c) {
            q += in_c[c] / two_m - (tot / two_m) * (tot / two_m);
        }
        *modularity_out = q;
    }
    return comm;
}

/** Aggregates communities into a coarser graph. */
Graph
aggregate(const Graph& g, const std::vector<int32_t>& comm,
          std::vector<int32_t>* renumber_out)
{
    const int64_t n = g.nodes();
    std::vector<int32_t> renumber(static_cast<size_t>(n), -1);
    int32_t next = 0;
    for (int64_t u = 0; u < n; ++u) {
        if (renumber[comm[u]] < 0)
            renumber[comm[u]] = next++;
    }
    std::vector<int32_t> node_comm(static_cast<size_t>(n));
    for (int64_t u = 0; u < n; ++u)
        node_comm[u] = renumber[comm[u]];

    std::vector<std::unordered_map<int32_t, double>> edges(
        static_cast<size_t>(next));
    std::vector<double> self(static_cast<size_t>(next), 0.0);
    for (int64_t u = 0; u < n; ++u) {
        const int32_t cu = node_comm[u];
        self[cu] += g.selfLoop[u];
        for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k) {
            const int32_t cv = node_comm[g.adj[k]];
            if (cv == cu)
                self[cu] += g.weight[k];
            else
                edges[cu][cv] += g.weight[k];
        }
    }

    Graph out;
    out.offset.resize(static_cast<size_t>(next) + 1, 0);
    for (int32_t c = 0; c < next; ++c)
        out.offset[c + 1] =
            out.offset[c] + static_cast<int64_t>(edges[c].size());
    out.adj.resize(static_cast<size_t>(out.offset[next]));
    out.weight.resize(out.adj.size());
    out.selfLoop = self;
    for (int32_t c = 0; c < next; ++c) {
        int64_t k = out.offset[c];
        for (const auto& [v, w] : edges[c]) {
            out.adj[k] = v;
            out.weight[k] = w;
            k++;
        }
    }
    for (double s : out.selfLoop)
        out.totalWeight += s;
    for (double w : out.weight)
        out.totalWeight += w;
    *renumber_out = node_comm;
    return out;
}

} // namespace

LouvainResult
louvainReorder(const CsrMatrix& m, const LouvainParams& params)
{
    DTC_CHECK_MSG(m.rows() == m.cols(),
                  "Louvain needs a square (graph) matrix");
    const int64_t n = m.rows();
    LouvainResult res;
    res.community.assign(static_cast<size_t>(n), 0);
    std::iota(res.community.begin(), res.community.end(), 0);
    if (n == 0)
        return res;

    Rng rng(params.seed);
    Graph g = buildGraph(m);
    // node_map[original] = node in current level graph.
    std::vector<int32_t> node_map(res.community);

    double modularity = 0.0;
    for (int level = 0; level < params.maxLevels; ++level) {
        double q = 0.0;
        std::vector<int32_t> comm = localMoving(g, params, rng, &q);

        std::vector<int32_t> renumber;
        Graph coarse = aggregate(g, comm, &renumber);
        for (int64_t u = 0; u < n; ++u)
            node_map[u] = renumber[node_map[u]];

        const bool converged =
            coarse.nodes() == g.nodes() || q <= modularity + 1e-9;
        modularity = std::max(modularity, q);
        g = std::move(coarse);
        if (converged)
            break;
    }

    res.community = node_map;
    res.modularity = modularity;
    int32_t max_comm = 0;
    for (int32_t c : res.community)
        max_comm = std::max(max_comm, c);
    res.numCommunities = max_comm + 1;

    // Permutation: rows sorted by (community, original id).
    res.permutation.resize(static_cast<size_t>(n));
    std::iota(res.permutation.begin(), res.permutation.end(), 0);
    std::stable_sort(res.permutation.begin(), res.permutation.end(),
                     [&](int32_t a, int32_t b) {
                         return res.community[a] < res.community[b];
                     });
    return res;
}

} // namespace dtc
