#include "reorder/minhash.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace dtc {

MinHasher::MinHasher(int num_hashes, uint64_t seed) : nHashes(num_hashes)
{
    DTC_CHECK(num_hashes > 0);
    Rng rng(seed);
    mulA.resize(static_cast<size_t>(num_hashes));
    mulB.resize(static_cast<size_t>(num_hashes));
    for (int i = 0; i < num_hashes; ++i) {
        mulA[i] = rng.next64() | 1; // odd multiplier
        mulB[i] = rng.next64();
    }
}

void
MinHasher::signature(const int32_t* begin, const int32_t* end,
                     uint32_t* out) const
{
    std::fill(out, out + nHashes,
              std::numeric_limits<uint32_t>::max());
    for (const int32_t* p = begin; p != end; ++p) {
        const uint64_t x = static_cast<uint64_t>(*p) + 1;
        for (int i = 0; i < nHashes; ++i) {
            // Multiply-xorshift hash, top 32 bits.
            uint64_t h = x * mulA[i] + mulB[i];
            h ^= h >> 29;
            h *= 0xbf58476d1ce4e5b9ull;
            const uint32_t v = static_cast<uint32_t>(h >> 32);
            out[i] = std::min(out[i], v);
        }
    }
}

void
MinHasher::signatureBatch(
    int64_t num_sets,
    const std::function<std::pair<const int32_t*, const int32_t*>(
        int64_t)>& set_of,
    uint32_t* out) const
{
    parallelFor(0, num_sets, 256, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            auto [begin, end] = set_of(i);
            signature(begin, end, out + i * nHashes);
        }
    });
}

double
jaccardSorted(const int32_t* a_begin, const int32_t* a_end,
              const int32_t* b_begin, const int32_t* b_end)
{
    int64_t inter = 0;
    const int32_t* a = a_begin;
    const int32_t* b = b_begin;
    while (a != a_end && b != b_end) {
        if (*a < *b) {
            ++a;
        } else if (*b < *a) {
            ++b;
        } else {
            ++inter;
            ++a;
            ++b;
        }
    }
    const int64_t uni =
        (a_end - a_begin) + (b_end - b_begin) - inter;
    return uni > 0 ? static_cast<double>(inter) /
                         static_cast<double>(uni)
                   : 0.0;
}

std::vector<std::pair<int32_t, int32_t>>
lshCandidatePairs(const std::vector<uint32_t>& signatures,
                  int64_t num_sets, int num_hashes, int bands,
                  size_t max_pairs)
{
    DTC_CHECK(bands > 0 && num_hashes % bands == 0);
    DTC_CHECK(static_cast<int64_t>(signatures.size()) ==
              num_sets * num_hashes);
    const int rows_per_band = num_hashes / bands;

    std::vector<std::pair<int32_t, int32_t>> pairs;
    pairs.reserve(max_pairs);
    // Bucket key -> members, rebuilt per band.
    std::unordered_map<uint64_t, std::vector<int32_t>> buckets;
    // Global de-dup of emitted pairs.
    std::unordered_set<uint64_t> seen;
    seen.reserve(max_pairs);

    for (int band = 0; band < bands; ++band) {
        buckets.clear();
        for (int64_t s = 0; s < num_sets; ++s) {
            uint64_t key = 0xcbf29ce484222325ull;
            bool empty = true;
            for (int i = 0; i < rows_per_band; ++i) {
                const uint32_t v =
                    signatures[s * num_hashes + band * rows_per_band +
                               i];
                if (v != std::numeric_limits<uint32_t>::max())
                    empty = false;
                key = (key ^ v) * 0x100000001b3ull;
            }
            if (!empty)
                buckets[key].push_back(static_cast<int32_t>(s));
        }
        for (const auto& [key, members] : buckets) {
            (void)key;
            if (members.size() < 2)
                continue;
            // Dense buckets contribute a chain (adjacent pairs) plus
            // a few skips, keeping output linear in bucket size while
            // still letting transitive merges assemble the cluster.
            const size_t m = members.size();
            for (size_t i = 0; i + 1 < m; ++i) {
                for (size_t step = 1;
                     step <= 2 && i + step < m; ++step) {
                    int32_t a = members[i];
                    int32_t b = members[i + step];
                    if (a > b)
                        std::swap(a, b);
                    const uint64_t pk =
                        (static_cast<uint64_t>(a) << 32) |
                        static_cast<uint32_t>(b);
                    if (!seen.insert(pk).second)
                        continue;
                    pairs.emplace_back(a, b);
                    if (pairs.size() >= max_pairs)
                        return pairs;
                }
            }
        }
    }
    return pairs;
}

} // namespace dtc
