#include "reorder/metis_like.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "common/rng.h"

namespace dtc {

namespace {

/** Weighted undirected graph in CSR-style arrays. */
struct PGraph
{
    std::vector<int64_t> offset;
    std::vector<int32_t> adj;
    std::vector<double> weight;
    std::vector<int64_t> nodeWeight;

    int64_t nodes() const
    {
        return static_cast<int64_t>(offset.size()) - 1;
    }
};

/** Builds the symmetrized unit-weight graph of a CSR pattern. */
PGraph
buildGraph(const CsrMatrix& m)
{
    const int64_t n = m.rows();
    std::vector<int64_t> deg(static_cast<size_t>(n), 0);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c == r)
                continue;
            deg[r]++;
            deg[c]++;
        }
    }
    PGraph g;
    g.offset.resize(static_cast<size_t>(n) + 1, 0);
    for (int64_t i = 0; i < n; ++i)
        g.offset[i + 1] = g.offset[i] + deg[i];
    g.adj.resize(static_cast<size_t>(g.offset[n]));
    g.weight.assign(g.adj.size(), 1.0);
    g.nodeWeight.assign(static_cast<size_t>(n), 1);
    std::vector<int64_t> cursor(g.offset.begin(), g.offset.end() - 1);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c == r)
                continue;
            g.adj[cursor[r]++] = c;
            g.adj[cursor[c]++] = static_cast<int32_t>(r);
        }
    }
    return g;
}

/** Heavy-edge matching coarsening; fills coarse map and graph. */
PGraph
coarsen(const PGraph& g, Rng& rng, std::vector<int32_t>* map_out)
{
    const int64_t n = g.nodes();
    std::vector<int32_t> match(static_cast<size_t>(n), -1);
    std::vector<int32_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    for (int32_t u : order) {
        if (match[u] >= 0)
            continue;
        int32_t best = -1;
        double best_w = -1.0;
        for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k) {
            const int32_t v = g.adj[k];
            if (v != u && match[v] < 0 && g.weight[k] > best_w) {
                best_w = g.weight[k];
                best = v;
            }
        }
        if (best >= 0) {
            match[u] = best;
            match[best] = u;
        } else {
            match[u] = u;
        }
    }

    std::vector<int32_t>& cmap = *map_out;
    cmap.assign(static_cast<size_t>(n), -1);
    int32_t next = 0;
    for (int64_t u = 0; u < n; ++u) {
        if (cmap[u] >= 0)
            continue;
        cmap[u] = next;
        if (match[u] != static_cast<int32_t>(u))
            cmap[match[u]] = next;
        next++;
    }

    PGraph c;
    std::vector<std::unordered_map<int32_t, double>> edges(
        static_cast<size_t>(next));
    c.nodeWeight.assign(static_cast<size_t>(next), 0);
    for (int64_t u = 0; u < n; ++u) {
        c.nodeWeight[cmap[u]] += g.nodeWeight[u];
        for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k) {
            const int32_t cv = cmap[g.adj[k]];
            if (cv != cmap[u])
                edges[cmap[u]][cv] += g.weight[k];
        }
    }
    c.offset.resize(static_cast<size_t>(next) + 1, 0);
    for (int32_t i = 0; i < next; ++i)
        c.offset[i + 1] =
            c.offset[i] + static_cast<int64_t>(edges[i].size());
    c.adj.resize(static_cast<size_t>(c.offset[next]));
    c.weight.resize(c.adj.size());
    for (int32_t i = 0; i < next; ++i) {
        int64_t k = c.offset[i];
        for (const auto& [v, w] : edges[i]) {
            c.adj[k] = v;
            c.weight[k] = w;
            k++;
        }
    }
    return c;
}

/** BFS region growing bisection of the coarsest graph. */
std::vector<int8_t>
initialBisect(const PGraph& g, Rng& rng, double imbalance)
{
    const int64_t n = g.nodes();
    int64_t total = 0;
    for (int64_t w : g.nodeWeight)
        total += w;
    const int64_t target = total / 2;
    const int64_t slack =
        static_cast<int64_t>(imbalance * static_cast<double>(total));

    // Pseudo-peripheral start: two BFS hops from a random node.
    int32_t start = static_cast<int32_t>(rng.nextBounded(n));
    for (int hop = 0; hop < 2; ++hop) {
        std::vector<int8_t> seen(static_cast<size_t>(n), 0);
        std::deque<int32_t> q{start};
        seen[start] = 1;
        int32_t last = start;
        while (!q.empty()) {
            last = q.front();
            q.pop_front();
            for (int64_t k = g.offset[last]; k < g.offset[last + 1];
                 ++k) {
                if (!seen[g.adj[k]]) {
                    seen[g.adj[k]] = 1;
                    q.push_back(g.adj[k]);
                }
            }
        }
        start = last;
    }

    std::vector<int8_t> side(static_cast<size_t>(n), 1);
    std::vector<int8_t> seen(static_cast<size_t>(n), 0);
    std::deque<int32_t> q{start};
    seen[start] = 1;
    int64_t grown = 0;
    while (grown < target - slack / 2) {
        if (q.empty()) {
            // Disconnected: seed a fresh unvisited node.
            int32_t u = -1;
            for (int64_t i = 0; i < n; ++i) {
                if (!seen[i]) {
                    u = static_cast<int32_t>(i);
                    break;
                }
            }
            if (u < 0)
                break;
            seen[u] = 1;
            q.push_back(u);
        }
        const int32_t u = q.front();
        q.pop_front();
        side[u] = 0;
        grown += g.nodeWeight[u];
        for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k) {
            if (!seen[g.adj[k]]) {
                seen[g.adj[k]] = 1;
                q.push_back(g.adj[k]);
            }
        }
    }
    return side;
}

/** Positive-gain boundary refinement (simplified FM sweeps). */
void
refine(const PGraph& g, std::vector<int8_t>& side, int passes,
       double imbalance)
{
    const int64_t n = g.nodes();
    int64_t total = 0, w0 = 0;
    for (int64_t u = 0; u < n; ++u) {
        total += g.nodeWeight[u];
        if (side[u] == 0)
            w0 += g.nodeWeight[u];
    }
    const int64_t lo =
        static_cast<int64_t>((0.5 - imbalance) *
                             static_cast<double>(total));
    const int64_t hi =
        static_cast<int64_t>((0.5 + imbalance) *
                             static_cast<double>(total));

    for (int pass = 0; pass < passes; ++pass) {
        int64_t moves = 0;
        for (int64_t u = 0; u < n; ++u) {
            double internal = 0.0, external = 0.0;
            for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k) {
                if (side[g.adj[k]] == side[u])
                    internal += g.weight[k];
                else
                    external += g.weight[k];
            }
            if (external <= internal)
                continue;
            const int64_t new_w0 =
                side[u] == 0 ? w0 - g.nodeWeight[u]
                             : w0 + g.nodeWeight[u];
            if (new_w0 < lo || new_w0 > hi)
                continue;
            side[u] ^= 1;
            w0 = new_w0;
            moves++;
        }
        if (moves == 0)
            break;
    }
}

/** Full multilevel bisection of the node set given by identity. */
std::vector<int8_t>
multilevelBisect(const PGraph& g, const MetisParams& p, Rng& rng)
{
    if (g.nodes() <= p.coarsestSize) {
        auto side = initialBisect(g, rng, p.imbalance);
        refine(g, side, p.refinePasses, p.imbalance);
        return side;
    }
    std::vector<int32_t> cmap;
    PGraph coarse = coarsen(g, rng, &cmap);
    std::vector<int8_t> cside;
    if (coarse.nodes() >= g.nodes()) {
        // Matching failed to shrink (star graphs): bisect directly.
        cside = initialBisect(g, rng, p.imbalance);
        refine(g, cside, p.refinePasses, p.imbalance);
        return cside;
    }
    cside = multilevelBisect(coarse, p, rng);
    std::vector<int8_t> side(static_cast<size_t>(g.nodes()));
    for (int64_t u = 0; u < g.nodes(); ++u)
        side[u] = cside[cmap[u]];
    refine(g, side, p.refinePasses, p.imbalance);
    return side;
}

/** Extracts the subgraph induced by @p nodes. */
PGraph
subgraph(const PGraph& g, const std::vector<int32_t>& nodes)
{
    std::unordered_map<int32_t, int32_t> local;
    local.reserve(nodes.size() * 2);
    for (size_t i = 0; i < nodes.size(); ++i)
        local[nodes[i]] = static_cast<int32_t>(i);

    PGraph s;
    s.offset.resize(nodes.size() + 1, 0);
    s.nodeWeight.resize(nodes.size());
    std::vector<std::pair<int32_t, double>> scratch;
    std::vector<std::vector<std::pair<int32_t, double>>> rows(
        nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const int32_t u = nodes[i];
        s.nodeWeight[i] = g.nodeWeight[u];
        for (int64_t k = g.offset[u]; k < g.offset[u + 1]; ++k) {
            auto it = local.find(g.adj[k]);
            if (it != local.end())
                rows[i].emplace_back(it->second, g.weight[k]);
        }
        s.offset[i + 1] =
            s.offset[i] + static_cast<int64_t>(rows[i].size());
    }
    s.adj.resize(static_cast<size_t>(s.offset.back()));
    s.weight.resize(s.adj.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        int64_t k = s.offset[i];
        for (const auto& [v, w] : rows[i]) {
            s.adj[k] = v;
            s.weight[k] = w;
            k++;
        }
    }
    return s;
}

/** Recursive bisection emitting parts in DFS order. */
void
recurse(const PGraph& g, const std::vector<int32_t>& nodes,
        const MetisParams& p, Rng& rng, std::vector<int32_t>* out)
{
    if (static_cast<int64_t>(nodes.size()) <= p.targetPartSize) {
        out->insert(out->end(), nodes.begin(), nodes.end());
        return;
    }
    PGraph sub = subgraph(g, nodes);
    std::vector<int8_t> side = multilevelBisect(sub, p, rng);
    std::vector<int32_t> left, right;
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (side[i] == 0)
            left.push_back(nodes[i]);
        else
            right.push_back(nodes[i]);
    }
    if (left.empty() || right.empty()) {
        // Degenerate cut: fall back to a plain split.
        out->insert(out->end(), nodes.begin(), nodes.end());
        return;
    }
    recurse(g, left, p, rng, out);
    recurse(g, right, p, rng, out);
}

} // namespace

std::vector<int32_t>
metisLikeReorder(const CsrMatrix& m, const MetisParams& params)
{
    DTC_CHECK_MSG(m.rows() == m.cols(),
                  "partitioning needs a square (graph) matrix");
    Rng rng(params.seed);
    PGraph g = buildGraph(m);
    std::vector<int32_t> all(static_cast<size_t>(m.rows()));
    std::iota(all.begin(), all.end(), 0);
    std::vector<int32_t> perm;
    perm.reserve(all.size());
    recurse(g, all, params, rng, &perm);
    DTC_ASSERT(perm.size() == all.size());
    return perm;
}

} // namespace dtc
