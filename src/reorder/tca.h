/**
 * @file
 * TCU-Cache-Aware (TCA) reordering — paper Section 4.3, Algorithm 1.
 *
 * Hierarchy I (TCU-Aware) greedily merges Jaccard-similar rows into
 * clusters capped at BLOCK_HEIGHT (16) rows, the TC-block height, so
 * each row window packs rows sharing columns and SGT condenses into
 * denser TC blocks (higher MeanNnzTC).
 *
 * Hierarchy II (Cache-Aware) repeats the same merge over the
 * clusters themselves — similarity computed on each cluster's
 * deduplicated column set — capped at SM_NUM clusters, so the row
 * windows that run concurrently on the GPU touch overlapping B rows
 * and hit in the shared L2.
 *
 * The LSH64 baseline of the paper (Huang et al., PPoPP'21) is this
 * same machinery with a 64-row cluster limit and no second hierarchy.
 */
#ifndef DTC_REORDER_TCA_H
#define DTC_REORDER_TCA_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** Tuning knobs of TCA reordering. */
struct TcaParams
{
    /** Hierarchy-I cluster size cap (the TC-block height). */
    int blockHeight = 16;

    /** Hierarchy-II cluster-of-clusters cap (SMs on the target). */
    int smNum = 128;

    /** Enables Hierarchy II (off = the TCU-only ablation). */
    bool cacheAware = true;

    /** MinHash signature length and LSH band count. */
    int numHashes = 32;
    int bands = 16;

    /** Jaccard cut-off below which candidate pairs are dropped. */
    double minSimilarity = 0.05;

    /** Cap on Hierarchy-II cluster column-set size (sampling). */
    int64_t maxClusterSetSize = 8192;

    uint64_t seed = 0x7ca0ffeeull;
};

/** Result of a TCA run. */
struct TcaResult
{
    /** Row permutation: new row r holds old row permutation[r]. */
    std::vector<int32_t> permutation;

    /** Row clusters formed by Hierarchy I. */
    int64_t numClusters = 0;

    /** Clusters-of-clusters formed by Hierarchy II. */
    int64_t numSuperClusters = 0;

    /** Candidate pairs examined per hierarchy. */
    int64_t candidatePairsH1 = 0;
    int64_t candidatePairsH2 = 0;
};

/** Runs TCU-Cache-Aware reordering over @p m. */
TcaResult tcaReorder(const CsrMatrix& m, const TcaParams& params = {});

} // namespace dtc

#endif // DTC_REORDER_TCA_H
