/**
 * @file
 * METIS-style multilevel recursive bisection — the graph-partition
 * reordering baseline of Fig. 13 (paper reference [28]).
 *
 * A from-scratch implementation of the classic multilevel scheme:
 *   1. coarsen by heavy-edge matching until the graph is small,
 *   2. bisect the coarsest graph by greedy BFS region growing from a
 *      pseudo-peripheral vertex,
 *   3. project back, refining the boundary with positive-gain moves
 *      (a lightweight FM pass),
 *   4. recurse on each half until parts reach the target size.
 *
 * Rows are ordered part-by-part (nested-dissection-style DFS order),
 * which clusters graph neighbourhoods — good for caches, but with no
 * notion of 16-row TC windows.
 */
#ifndef DTC_REORDER_METIS_LIKE_H
#define DTC_REORDER_METIS_LIKE_H

#include <cstdint>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** Tuning knobs of the multilevel partitioner. */
struct MetisParams
{
    /** Recursion stops when a part has at most this many rows. */
    int64_t targetPartSize = 1024;

    /** Coarsening stops below this node count. */
    int64_t coarsestSize = 128;

    /** Allowed imbalance of a bisection (0.1 = 55/45). */
    double imbalance = 0.1;

    /** Boundary-refinement sweeps per uncoarsening level. */
    int refinePasses = 2;

    uint64_t seed = 0x3e7150ull;
};

/**
 * Partitions the symmetrized structure of @p m and returns the row
 * permutation grouping each part contiguously.  @pre square matrix.
 */
std::vector<int32_t> metisLikeReorder(const CsrMatrix& m,
                                      const MetisParams& params = {});

} // namespace dtc

#endif // DTC_REORDER_METIS_LIKE_H
