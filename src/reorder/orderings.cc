#include "reorder/orderings.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/check.h"
#include "reorder/louvain.h"
#include "reorder/metis_like.h"
#include "reorder/tca.h"

namespace dtc {

const char*
reorderMethodName(ReorderMethod method)
{
    switch (method) {
      case ReorderMethod::Identity:
        return "SGT";
      case ReorderMethod::Degree:
        return "Degree";
      case ReorderMethod::Rcm:
        return "RCM";
      case ReorderMethod::Metis:
        return "METIS";
      case ReorderMethod::Louvain:
        return "Louvain";
      case ReorderMethod::Lsh64:
        return "LSH64";
      case ReorderMethod::TcaTcuOnly:
        return "TCA(TCU-only)";
      case ReorderMethod::Tca:
        return "TCA";
    }
    return "?";
}

std::vector<int32_t>
identityOrder(int64_t n)
{
    std::vector<int32_t> perm(static_cast<size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    return perm;
}

std::vector<int32_t>
degreeOrder(const CsrMatrix& m)
{
    std::vector<int32_t> perm = identityOrder(m.rows());
    std::stable_sort(perm.begin(), perm.end(),
                     [&](int32_t a, int32_t b) {
                         return m.rowLength(a) > m.rowLength(b);
                     });
    return perm;
}

std::vector<int32_t>
rcmOrder(const CsrMatrix& m)
{
    DTC_CHECK_MSG(m.rows() == m.cols(), "RCM needs a square matrix");
    const int64_t n = m.rows();

    // Symmetrized adjacency.
    std::vector<int64_t> deg(static_cast<size_t>(n), 0);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c == r)
                continue;
            deg[r]++;
            deg[c]++;
        }
    }
    std::vector<int64_t> offset(static_cast<size_t>(n) + 1, 0);
    for (int64_t i = 0; i < n; ++i)
        offset[i + 1] = offset[i] + deg[i];
    std::vector<int32_t> adj(static_cast<size_t>(offset[n]));
    std::vector<int64_t> cursor(offset.begin(), offset.end() - 1);
    for (int64_t r = 0; r < n; ++r) {
        for (int64_t k = m.rowPtr()[r]; k < m.rowPtr()[r + 1]; ++k) {
            const int32_t c = m.colIdx()[k];
            if (c == r)
                continue;
            adj[cursor[r]++] = c;
            adj[cursor[c]++] = static_cast<int32_t>(r);
        }
    }

    std::vector<int32_t> order;
    order.reserve(static_cast<size_t>(n));
    std::vector<int8_t> seen(static_cast<size_t>(n), 0);
    std::vector<int32_t> nbrs;
    for (int64_t seed = 0; seed < n; ++seed) {
        if (seen[seed])
            continue;
        // Start each component at its minimum-degree node reachable
        // from `seed` (cheap pseudo-peripheral heuristic).
        std::deque<int32_t> q{static_cast<int32_t>(seed)};
        seen[seed] = 1;
        order.push_back(static_cast<int32_t>(seed));
        while (!q.empty()) {
            const int32_t u = q.front();
            q.pop_front();
            nbrs.clear();
            for (int64_t k = offset[u]; k < offset[u + 1]; ++k) {
                if (!seen[adj[k]])
                    nbrs.push_back(adj[k]);
            }
            std::sort(nbrs.begin(), nbrs.end(),
                      [&](int32_t a, int32_t b) {
                          if (deg[a] != deg[b])
                              return deg[a] < deg[b];
                          return a < b;
                      });
            for (int32_t v : nbrs) {
                if (!seen[v]) {
                    seen[v] = 1;
                    order.push_back(v);
                    q.push_back(v);
                }
            }
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

std::vector<int32_t>
computeReordering(const CsrMatrix& m, ReorderMethod method,
                  const ReorderParams& params)
{
    switch (method) {
      case ReorderMethod::Identity:
        return identityOrder(m.rows());
      case ReorderMethod::Degree:
        return degreeOrder(m);
      case ReorderMethod::Rcm:
        return rcmOrder(m);
      case ReorderMethod::Metis: {
        MetisParams p;
        p.seed = params.seed;
        return metisLikeReorder(m, p);
      }
      case ReorderMethod::Louvain: {
        LouvainParams p;
        p.seed = params.seed;
        return louvainReorder(m, p).permutation;
      }
      case ReorderMethod::Lsh64: {
        TcaParams p;
        p.blockHeight = 64;
        p.cacheAware = false;
        p.seed = params.seed;
        return tcaReorder(m, p).permutation;
      }
      case ReorderMethod::TcaTcuOnly: {
        TcaParams p;
        p.blockHeight = params.blockHeight;
        p.cacheAware = false;
        p.seed = params.seed;
        return tcaReorder(m, p).permutation;
      }
      case ReorderMethod::Tca: {
        TcaParams p;
        p.blockHeight = params.blockHeight;
        p.smNum = params.smNum;
        p.seed = params.seed;
        return tcaReorder(m, p).permutation;
      }
    }
    DTC_ASSERT(false);
    return {};
}

bool
isPermutation(const std::vector<int32_t>& perm, int64_t n)
{
    if (static_cast<int64_t>(perm.size()) != n)
        return false;
    std::vector<int8_t> seen(static_cast<size_t>(n), 0);
    for (int32_t p : perm) {
        if (p < 0 || p >= n || seen[p])
            return false;
        seen[p] = 1;
    }
    return true;
}

} // namespace dtc
