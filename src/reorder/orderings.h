/**
 * @file
 * Reordering method registry: classic orderings (identity, degree
 * sort, Reverse Cuthill-McKee), the LSH64 baseline, and a dispatcher
 * over every method compared in Fig. 13.
 */
#ifndef DTC_REORDER_ORDERINGS_H
#define DTC_REORDER_ORDERINGS_H

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csr.h"

namespace dtc {

/** Reordering methods compared in the paper's Fig. 13. */
enum class ReorderMethod
{
    Identity,   ///< No reordering (SGT on the original labeling).
    Degree,     ///< Rows sorted by descending degree.
    Rcm,        ///< Reverse Cuthill-McKee (bandwidth reduction).
    Metis,      ///< METIS-style multilevel partitioning.
    Louvain,    ///< Louvain community detection.
    Lsh64,      ///< LSH clustering with 64-row limit, one level.
    TcaTcuOnly, ///< TCA Hierarchy I only (ablation).
    Tca,        ///< Full TCU-Cache-Aware reordering.
};

/** Display name of a method. */
const char* reorderMethodName(ReorderMethod method);

/** Shared knobs for the dispatcher. */
struct ReorderParams
{
    int blockHeight = 16; ///< TCA Hierarchy-I limit.
    int smNum = 128;      ///< TCA Hierarchy-II limit.
    uint64_t seed = 0x05eed;
};

/** Identity permutation. */
std::vector<int32_t> identityOrder(int64_t n);

/** Rows sorted by descending length, stable. */
std::vector<int32_t> degreeOrder(const CsrMatrix& m);

/**
 * Reverse Cuthill-McKee on the symmetrized pattern: BFS from a
 * pseudo-peripheral vertex, neighbours visited in ascending-degree
 * order, final order reversed.  @pre square matrix.
 */
std::vector<int32_t> rcmOrder(const CsrMatrix& m);

/** Dispatches to the requested method. */
std::vector<int32_t> computeReordering(const CsrMatrix& m,
                                       ReorderMethod method,
                                       const ReorderParams& params = {});

/** Checks that @p perm is a permutation of [0, n). */
bool isPermutation(const std::vector<int32_t>& perm, int64_t n);

} // namespace dtc

#endif // DTC_REORDER_ORDERINGS_H
