#include "runtime/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"

namespace dtc {
namespace runtime {

namespace {

constexpr char kMagic[8] = {'D', 'T', 'C', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kVersion = 1;

/** Streaming FNV-1a (same parameters as formats/serialize.cc). */
class Checksum
{
  public:
    void
    feed(const void* data, size_t bytes)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < bytes; ++i) {
            state ^= p[i];
            state *= 0x100000001b3ull;
        }
    }

    uint64_t value() const { return state; }

  private:
    uint64_t state = 0xcbf29ce484222325ull;
};

/** Appends PODs/arrays to an in-memory payload buffer. */
class PayloadWriter
{
  public:
    template <typename T>
    void
    pod(const T& v)
    {
        const auto* p = reinterpret_cast<const char*>(&v);
        buf.insert(buf.end(), p, p + sizeof(T));
    }

    template <typename T>
    void
    vec(const std::vector<T>& v)
    {
        pod(static_cast<uint64_t>(v.size()));
        if (!v.empty()) {
            const auto* p = reinterpret_cast<const char*>(v.data());
            buf.insert(buf.end(), p, p + v.size() * sizeof(T));
        }
    }

    void
    matrix(const DenseMatrix& m)
    {
        pod(m.rows());
        pod(m.cols());
        if (m.size() > 0) {
            const auto* p = reinterpret_cast<const char*>(m.data());
            buf.insert(buf.end(), p, p + m.size() * sizeof(float));
        }
    }

    const std::vector<char>& bytes() const { return buf; }

  private:
    std::vector<char> buf;
};

[[noreturn]] void
raiseCorrupt(const std::string& path, const char* what,
             int64_t offset = -1)
{
    DTC_RAISE_CTX(ErrorCode::CorruptData,
                  path << ": " << what,
                  (ErrorContext{.component = "checkpoint",
                                .byteOffset = offset}));
}

/**
 * Checksum-verified payload reader.  The whole payload is validated
 * before any field is parsed, so length prefixes can be trusted only
 * against remaining-byte bounds, never for unchecked allocation.
 */
class PayloadReader
{
  public:
    PayloadReader(std::vector<char> payload, const std::string& p)
        : buf(std::move(payload)), path(p)
    {
    }

    template <typename T>
    T
    pod()
    {
        T v;
        need(sizeof(T));
        std::memcpy(&v, buf.data() + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }

    template <typename T>
    std::vector<T>
    vec()
    {
        const uint64_t n = pod<uint64_t>();
        if (n > (buf.size() - pos) / sizeof(T))
            raiseCorrupt(path, "array length exceeds payload",
                         static_cast<int64_t>(pos));
        std::vector<T> v(static_cast<size_t>(n));
        if (n > 0) {
            std::memcpy(v.data(), buf.data() + pos, n * sizeof(T));
            pos += n * sizeof(T);
        }
        return v;
    }

    DenseMatrix
    matrix()
    {
        const int64_t rows = pod<int64_t>();
        const int64_t cols = pod<int64_t>();
        if (rows < 0 || cols < 0 ||
            (rows > 0 &&
             static_cast<uint64_t>(cols) >
                 (buf.size() - pos) / sizeof(float) /
                     static_cast<uint64_t>(rows)))
            raiseCorrupt(path, "matrix shape exceeds payload",
                         static_cast<int64_t>(pos));
        DenseMatrix m(rows, cols);
        if (m.size() > 0) {
            std::memcpy(m.data(), buf.data() + pos,
                        m.size() * sizeof(float));
            pos += m.size() * sizeof(float);
        }
        return m;
    }

    bool atEnd() const { return pos == buf.size(); }

  private:
    void
    need(size_t bytes)
    {
        if (buf.size() - pos < bytes)
            raiseCorrupt(path, "truncated payload",
                         static_cast<int64_t>(pos));
    }

    std::vector<char> buf;
    std::string path;
    size_t pos = 0;
};

} // namespace

void
writeCheckpoint(const std::string& path, const TrainerSnapshot& snap)
{
    PayloadWriter w;
    w.pod(kVersion);
    w.pod(snap.epochsDone);
    w.pod(snap.adamT);
    w.pod(snap.rngState);
    w.pod(static_cast<uint32_t>(snap.optimizer));
    w.vec(snap.loss);
    w.vec(snap.accuracy);
    w.pod(static_cast<uint64_t>(snap.layers.size()));
    for (const GcnLayerState& l : snap.layers) {
        w.matrix(l.weight);
        w.vec(l.bias);
        w.matrix(l.adamM);
        w.matrix(l.adamV);
        w.vec(l.adamMBias);
        w.vec(l.adamVBias);
    }
    Checksum sum;
    sum.feed(w.bytes().data(), w.bytes().size());
    const uint64_t checksum = sum.value();

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        DTC_CHECK_CODE(out.good(), ErrorCode::InvalidInput,
                       "cannot open checkpoint temp file " << tmp);
        out.write(kMagic, sizeof(kMagic));
        // Crash site: the magic is on disk but the payload is not —
        // a torn temp file the reader must reject and the rename
        // must never promote.
        DTC_FAULT_POINT(fault::sites::kTrainerCheckpointWrite);
        out.write(w.bytes().data(),
                  static_cast<std::streamsize>(w.bytes().size()));
        out.write(reinterpret_cast<const char*>(&checksum),
                  sizeof(checksum));
        out.flush();
        DTC_CHECK_CODE(out.good(), ErrorCode::InvalidInput,
                       "checkpoint write failed for " << tmp);
    }
    // Crash site: temp file complete but not yet promoted; the
    // previous checkpoint must stay the latest.
    DTC_FAULT_POINT(fault::sites::kTrainerCheckpointRename);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        DTC_RAISE_CTX(ErrorCode::InvalidInput,
                      "cannot rename " << tmp << " to " << path,
                      (ErrorContext{.component = "checkpoint"}));
    }
}

TrainerSnapshot
readCheckpoint(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        raiseCorrupt(path, "cannot open checkpoint file");
    std::vector<char> all(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (all.size() < sizeof(kMagic) + sizeof(uint64_t) ||
        std::memcmp(all.data(), kMagic, sizeof(kMagic)) != 0)
        raiseCorrupt(path, "bad magic: not a DTCCKPT1 file", 0);

    const size_t payload_len =
        all.size() - sizeof(kMagic) - sizeof(uint64_t);
    std::vector<char> payload(
        all.begin() + sizeof(kMagic),
        all.begin() + static_cast<int64_t>(sizeof(kMagic) +
                                           payload_len));
    uint64_t stored = 0;
    std::memcpy(&stored, all.data() + sizeof(kMagic) + payload_len,
                sizeof(stored));
    Checksum sum;
    sum.feed(payload.data(), payload.size());
    if (sum.value() != stored)
        raiseCorrupt(path, "checksum mismatch");

    PayloadReader r(std::move(payload), path);
    const uint32_t version = r.pod<uint32_t>();
    if (version != kVersion)
        raiseCorrupt(path, "unsupported checkpoint version");
    TrainerSnapshot snap;
    snap.epochsDone = r.pod<int64_t>();
    snap.adamT = r.pod<int64_t>();
    snap.rngState = r.pod<uint64_t>();
    const uint32_t opt = r.pod<uint32_t>();
    if (opt > static_cast<uint32_t>(Optimizer::Adam))
        raiseCorrupt(path, "unknown optimizer id");
    snap.optimizer = static_cast<Optimizer>(opt);
    snap.loss = r.vec<double>();
    snap.accuracy = r.vec<double>();
    const uint64_t layers = r.pod<uint64_t>();
    if (layers > 1024)
        raiseCorrupt(path, "implausible layer count");
    snap.layers.reserve(static_cast<size_t>(layers));
    for (uint64_t i = 0; i < layers; ++i) {
        GcnLayerState l;
        l.weight = r.matrix();
        l.bias = r.vec<float>();
        l.adamM = r.matrix();
        l.adamV = r.matrix();
        l.adamMBias = r.vec<float>();
        l.adamVBias = r.vec<float>();
        snap.layers.push_back(std::move(l));
    }
    if (!r.atEnd())
        raiseCorrupt(path, "trailing bytes after snapshot");
    return snap;
}

std::string
checkpointPath(const std::string& dir, int64_t epochs_done)
{
    DTC_CHECK_MSG(epochs_done >= 0,
                  "epochs_done must be >= 0, got " << epochs_done);
    std::ostringstream os;
    os << dir << "/ckpt-" << std::setw(6) << std::setfill('0')
       << epochs_done << ".dtc";
    return os.str();
}

std::string
latestCheckpoint(const std::string& dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return std::string();
    std::string best;
    int64_t best_epoch = -1;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        const std::string name = entry.path().filename().string();
        constexpr const char* kPrefix = "ckpt-";
        constexpr const char* kSuffix = ".dtc";
        if (name.size() <= 5 + 4 || name.rfind(kPrefix, 0) != 0 ||
            name.compare(name.size() - 4, 4, kSuffix) != 0)
            continue;
        const std::string digits = name.substr(5, name.size() - 9);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos)
            continue;
        const int64_t epoch = std::stoll(digits);
        if (epoch > best_epoch) {
            best_epoch = epoch;
            best = entry.path().string();
        }
    }
    return best;
}

} // namespace runtime
} // namespace dtc
