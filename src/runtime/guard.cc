#include "runtime/guard.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/cancel.h"
#include "common/check.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "common/rng.h"
#include "kernels/reference.h"
#include "obs/metrics.h"

namespace dtc {
namespace runtime {
namespace guard {

namespace {

constexpr double kDefaultSample = 0.01;

/**
 * Cached enablement so the disabled hot path is one relaxed load:
 * -1 unresolved, 0 disabled, 1 enabled.  The fraction itself lives in
 * a separate atomic; it is only read after the enablement probe.
 */
std::atomic<int> gEnabled{-1};
std::atomic<double> gFraction{kDefaultSample};

double
resolveFromEnv()
{
    const auto v =
        env::readDouble("DTC_GUARD_SAMPLE", 0.0, 1.0);
    const double f = v ? *v : kDefaultSample;
    gFraction.store(f, std::memory_order_relaxed);
    gEnabled.store(f > 0.0 ? 1 : 0, std::memory_order_relaxed);
    return f;
}

} // namespace

bool
enabled()
{
    const int e = gEnabled.load(std::memory_order_relaxed);
    if (e >= 0)
        return e != 0;
    return resolveFromEnv() > 0.0;
}

double
sampleFraction()
{
    if (gEnabled.load(std::memory_order_relaxed) < 0)
        return resolveFromEnv();
    return gFraction.load(std::memory_order_relaxed);
}

void
setSampleFraction(double f)
{
    if (f < 0.0) {
        gEnabled.store(-1, std::memory_order_relaxed);
        return;
    }
    gFraction.store(f, std::memory_order_relaxed);
    gEnabled.store(f > 0.0 ? 1 : 0, std::memory_order_relaxed);
}

GuardResult
checkSampledRows(const CsrMatrix& a, const DenseMatrix& b,
                 const DenseMatrix& c, Precision p,
                 const GuardOptions& opt)
{
    DTC_CHECK(a.cols() == b.rows());
    DTC_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
    DTC_FAULT_POINT(fault::sites::kRuntimeGuardCheck);

    GuardResult res;
    const double frac =
        opt.sampleFraction < 0.0 ? sampleFraction()
                                 : opt.sampleFraction;
    const int64_t rows = a.rows();
    if (frac <= 0.0 || rows == 0 || b.cols() == 0)
        return res;
    // At least one row whenever the guard is on and there is output.
    const int64_t want = std::min<int64_t>(
        rows, std::max<int64_t>(
                  1, static_cast<int64_t>(std::llround(
                         frac * static_cast<double>(rows)))));

    Rng rng(opt.seed ^ (static_cast<uint64_t>(rows) << 20) ^
            static_cast<uint64_t>(b.cols()));
    std::vector<uint64_t> sample = rng.sampleWithoutReplacement(
        static_cast<uint64_t>(rows), static_cast<uint64_t>(want));
    std::sort(sample.begin(), sample.end());

    obs::metrics::counter("runtime.guard.checks").add(1);
    obs::metrics::counter("runtime.guard.rows")
        .add(static_cast<uint64_t>(sample.size()));

    const int64_t n = b.cols();
    std::vector<double> acc(static_cast<size_t>(n));
    for (const uint64_t ru : sample) {
        cancel::poll(); // deadline coverage for the guard phase
        const int64_t r = static_cast<int64_t>(ru);
        std::fill(acc.begin(), acc.end(), 0.0);
        double row_abs_sum = 0.0;
        double max_abs_b = 0.0;
        const int64_t lo = a.rowPtr()[r];
        const int64_t hi = a.rowPtr()[r + 1];
        for (int64_t k = lo; k < hi; ++k) {
            const double v = a.values()[k];
            row_abs_sum += std::fabs(v);
            const float* brow = b.row(a.colIdx()[k]);
            for (int64_t j = 0; j < n; ++j) {
                const double bj = brow[j];
                acc[static_cast<size_t>(j)] += v * bj;
                max_abs_b = std::max(max_abs_b, std::fabs(bj));
            }
        }
        const double tol = spmmRowErrorBound(p, hi - lo, row_abs_sum,
                                             max_abs_b, opt.safety);
        for (int64_t j = 0; j < n; ++j) {
            const double got = c.at(r, j);
            const double want_v = acc[static_cast<size_t>(j)];
            if (!(std::fabs(got - want_v) <= tol)) { // catches NaN
                ++res.mismatches;
                if (res.firstBadRow < 0) {
                    res.firstBadRow = r;
                    std::ostringstream os;
                    os << "guard mismatch at (" << r << "," << j
                       << "): got " << got << ", want " << want_v
                       << " +- " << tol;
                    res.detail = os.str();
                }
                break; // one mismatch per row is enough
            }
        }
    }
    res.rowsChecked = static_cast<int64_t>(sample.size());
    if (res.mismatches > 0)
        obs::metrics::counter("runtime.guard.mismatches")
            .add(static_cast<uint64_t>(res.mismatches));
    return res;
}

} // namespace guard
} // namespace runtime
} // namespace dtc
