/**
 * @file
 * The resilient execution layer — the single entry point examples,
 * benches, and deployments route SpMM through.
 *
 * Runtime wraps the kernel registry, the tuner, and the host engine
 * behind one call that survives the failure modes a long-lived
 * service actually meets:
 *
 *   - Deadlines & cancellation: run() installs a CancelToken for the
 *     whole prepare/compute/guard pipeline (DTC_DEADLINE_MS or
 *     RuntimeOptions::deadlineMs); parallelFor chunk boundaries and
 *     the engine's column-panel loops poll it, so an over-deadline
 *     SpMM aborts mid-flight with DtcError{DeadlineExceeded} and no
 *     leaked state.
 *   - Retry + circuit breaker: transient ResourceExhausted failures
 *     retry with exponential backoff; persistent failures trip the
 *     kernel's CircuitBreaker (runtime/breaker.h) and the request
 *     reroutes to the tuner's next-best candidate.  This is the
 *     paper's Selector-fallback idea (Section 6) lifted from "pick a
 *     strategy per matrix" to "pick a survivor per request".
 *   - Online result validation: the sampled-row guard
 *     (runtime/guard.h) recomputes ~1% of output rows; a mismatch
 *     counts as a kernel failure and triggers full re-execution on
 *     the next candidate.  The double-accumulation reference is the
 *     terminal authority when every registry kernel is exhausted.
 *
 * Deadline/cancel errors are never retried and never feed the
 * breaker — an expired budget says nothing about the kernel.
 */
#ifndef DTC_RUNTIME_RUNTIME_H
#define DTC_RUNTIME_RUNTIME_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "gpusim/cost_model.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"
#include "matrix/dense.h"
#include "runtime/breaker.h"
#include "runtime/guard.h"
#include "tuner/tuner.h"

namespace dtc {
namespace runtime {

/** Knobs for one Runtime instance. */
struct RuntimeOptions
{
    /** Tuner request (candidates, dense width, iteration horizon). */
    TuneRequest tune;

    /**
     * Attempts per kernel for *transient* (ResourceExhausted)
     * failures; other failure codes reroute immediately.
     */
    int maxAttemptsPerKernel = 3;

    /**
     * Backoff before retry r is base * 2^(r-1) milliseconds; 0
     * disables sleeping (retry sequencing stays identical — the
     * backoff only affects wall-clock, keeping DTC_FAULT tests
     * deterministic and fast).
     */
    double retryBackoffBaseMs = 0.0;

    /** Breaker thresholds for breakers this runtime creates. */
    BreakerOptions breaker;

    /** Guard knobs; sampleFraction < 0 defers to DTC_GUARD_SAMPLE. */
    guard::GuardOptions guard;

    /**
     * Deadline for each run() in ms; < 0 defers to DTC_DEADLINE_MS,
     * 0 means none.
     */
    int64_t deadlineMs = -1;

    /**
     * Requested operand precision: candidates are instantiated with
     * makeKernelAt(kind, *precision), and kinds that cannot express
     * it are dropped (typed Unsupported failure entry, no retry).
     * Unset keeps every kernel at its native precision.  The serving
     * layer sets this so one (A, precision) cache entry reroutes only
     * among kernels that honour the tenant's requested precision.
     */
    std::optional<Precision> precision;

    /**
     * Deterministic test hook: trip the deadline on the n-th
     * cancellation poll instead of wall-clock (0 = off).
     */
    int64_t deadlineChecks = 0;

    /**
     * Test seam: called after each successful compute() with the
     * kernel's display name and the output, *before* the guard runs.
     * Guard tests use it to emulate a kernel silently producing wrong
     * bits; never set in production.
     */
    std::function<void(const std::string& kernel, DenseMatrix& c)>
        postComputeHook;
};

/** One failed attempt, for diagnostics. */
struct RunAttempt
{
    std::string kernel;
    ErrorCode code = ErrorCode::Internal;
    std::string detail;
    bool guardMismatch = false; ///< Failure was a guard rejection.
};

/** What one run() did. */
struct RunReport
{
    std::string kernel;      ///< Kernel that produced the result.
    /** Numeric precision of the winning path (Fp32 for fallback). */
    Precision precision = Precision::Fp32;
    int attempts = 0;        ///< Total compute attempts.
    int retries = 0;         ///< Transient-failure retries.
    int reexecs = 0;         ///< Guard-forced re-executions.
    int64_t guardRowsChecked = 0;
    bool usedReferenceFallback = false; ///< Terminal double-acc path.
    std::vector<RunAttempt> failures;   ///< Every failed attempt.
};

/**
 * Resilient SpMM executor bound to one sparse matrix (see file
 * comment).  Construction tunes the candidate set on @p cm — or, via
 * the tuned-state constructor, reuses a ranking computed once by
 * tune() so an identical (registry, matrix) pair never re-runs the
 * tuner per request (the serving layer's prepared-kernel cache keys
 * on exactly that).  Kernels prepare lazily on first use.
 * Thread-compatible: concurrent run() calls on one instance are not
 * supported (the breaker registry is thread-safe, the
 * prepared-kernel cache is not).
 */
class Runtime
{
  public:
    /**
     * @param a         the sparse operand (copied)
     * @param cm        cost model for tuning
     * @param opt       runtime knobs
     * @param breakers  breaker registry; nullptr = a registry private
     *                  to this Runtime built from opt.breaker
     */
    Runtime(const CsrMatrix& a, const CostModel& cm,
            RuntimeOptions opt = {},
            BreakerRegistry* breakers = nullptr);

    /**
     * Constructs from tuned state computed once by tune(): no tuner
     * run, no cost-model walk — the reusable half of construction the
     * serving layer amortizes across requests.  @p tuned must be the
     * result of tune() on an identical matrix + candidate set
     * (checked only by size/shape plausibility, not re-derived).
     */
    Runtime(const CsrMatrix& a,
            std::shared_ptr<const TuneResult> tuned,
            RuntimeOptions opt = {},
            BreakerRegistry* breakers = nullptr);

    /**
     * Runs the tuner once for @p a and returns the shareable ranking;
     * feed it to any number of Runtime instances (or the same one
     * reconstructed later) to skip re-tuning.
     */
    static std::shared_ptr<const TuneResult>
    tune(const CsrMatrix& a, const TuneRequest& request,
         const CostModel& cm);

    /**
     * C = A * B with deadline, retry, breaker rerouting, and guard
     * validation.  @p c must be a.rows() x b.cols().  Throws
     * DtcError{DeadlineExceeded|Cancelled} on an expired budget and
     * DtcError{Unsupported} when every candidate (and the reference
     * fallback) failed.
     */
    void run(const DenseMatrix& b, DenseMatrix& c,
             RunReport* report = nullptr);

    /** Allocating convenience overload. */
    DenseMatrix run(const DenseMatrix& b);

    /** The tuner's ranking this runtime routes over. */
    const TuneResult& tuning() const { return *tuned; }

    /** The shareable tuned state (reusable via the tuned ctor). */
    std::shared_ptr<const TuneResult> tunedState() const
    {
        return tuned;
    }

    /** The breaker registry in use. */
    BreakerRegistry& breakers() { return *breg; }

    const RuntimeOptions& options() const { return opt; }

  private:
    struct Candidate
    {
        KernelKind kind;
        std::string name;
        Precision precision;
        std::unique_ptr<SpmmKernel> kernel; ///< Lazily prepared.
        bool dead = false; ///< prepare() refused; never retried.
    };

    /** Prepares (once) and returns the kernel, or null if refused. */
    SpmmKernel* preparedKernel(Candidate& cand, RunReport& rep);

    /** Builds candidates + breaker wiring from the tuned ranking. */
    void initFromTuned(BreakerRegistry* breakers);

    CsrMatrix a;
    RuntimeOptions opt;
    std::shared_ptr<const TuneResult> tuned;
    std::vector<Candidate> candidates; ///< Tuner rank order.
    std::unique_ptr<BreakerRegistry> ownedBreakers;
    BreakerRegistry* breg;
};

/**
 * One-shot convenience: C = A * B under a deadline of
 * @p deadline_ms milliseconds (0 = none), with default candidates.
 */
void runWithDeadline(const CsrMatrix& a, const DenseMatrix& b,
                     DenseMatrix& c, const CostModel& cm,
                     int64_t deadline_ms,
                     RunReport* report = nullptr);

} // namespace runtime
} // namespace dtc

#endif // DTC_RUNTIME_RUNTIME_H
