/**
 * @file
 * Online result validation ("the guard").
 *
 * After a kernel produces C = A*B, the guard recomputes a small,
 * deterministically sampled set of output rows with double
 * accumulation and judges each against the same analytic error bound
 * the conformance oracle uses (spmmRowErrorBound in
 * kernels/reference.h), except with a row-local max|b| — only the B
 * entries a row actually touches enter its error terms, so the bound
 * stays sound while being tighter than the oracle's global max.
 *
 * A mismatch means the kernel silently produced wrong bits — the
 * runtime then trips that kernel's breaker and re-executes the whole
 * request on the next-best candidate.
 *
 * Cost model: checking fraction f of rows costs ~f of a full
 * reference SpMM.  The default f = 1%% (DTC_GUARD_SAMPLE) keeps the
 * steady-state overhead ~1%%.  When disabled (f <= 0) the hot-path
 * probe is a single relaxed atomic load — measured by
 * BM_RuntimeGuardOverhead in bench_micro_host.
 *
 * Counters: runtime.guard.{checks,rows,mismatches} here;
 * runtime.guard.reexecs is tallied by the runtime when it re-runs.
 */
#ifndef DTC_RUNTIME_GUARD_H
#define DTC_RUNTIME_GUARD_H

#include <cstdint>
#include <string>

#include "common/precision.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace dtc {
namespace runtime {
namespace guard {

/** Guard tuning knobs. */
struct GuardOptions
{
    /**
     * Fraction of output rows to recompute, in [0, 1].  Negative
     * means "resolve from DTC_GUARD_SAMPLE, default 0.01"; zero
     * disables the guard.
     */
    double sampleFraction = -1.0;

    /** Safety factor on the analytic bound (oracle default is 8). */
    double safety = 8.0;

    /** Seed for the deterministic row sample. */
    uint64_t seed = 0x60a2dull;
};

/** Outcome of one guard pass. */
struct GuardResult
{
    int64_t rowsChecked = 0;
    int64_t mismatches = 0;
    int64_t firstBadRow = -1;
    std::string detail; ///< Human-readable first-mismatch description.

    bool ok() const { return mismatches == 0; }
};

/**
 * Fast enablement probe: one relaxed atomic load once the env has
 * been resolved.  True when the effective sample fraction is > 0.
 */
bool enabled();

/** The effective sample fraction (env-resolved, cached). */
double sampleFraction();

/**
 * Overrides the sample fraction (f <= 0 disables).  Passing a
 * negative value re-resolves from DTC_GUARD_SAMPLE.  Tests use this
 * to flip the guard without mutating the environment.
 */
void setSampleFraction(double f);

/**
 * Recomputes a deterministic sample of rows of @p c (expected to hold
 * A*B under precision @p p) and reports mismatches.  Never throws on
 * mismatch — callers decide policy.  Honours the fault site
 * runtime.guard.check.
 */
GuardResult checkSampledRows(const CsrMatrix& a, const DenseMatrix& b,
                             const DenseMatrix& c, Precision p,
                             const GuardOptions& opt = {});

} // namespace guard
} // namespace runtime
} // namespace dtc

#endif // DTC_RUNTIME_GUARD_H
