#include "runtime/breaker.h"

#include "obs/metrics.h"

namespace dtc {
namespace runtime {

namespace {

obs::Counter&
breakerCounter(const char* event)
{
    return obs::metrics::counter(std::string("runtime.breaker.") +
                                 event);
}

} // namespace

CircuitBreaker::CircuitBreaker(std::string kernel_name,
                               BreakerOptions options)
    : name(std::move(kernel_name)), opt(options)
{
}

bool
CircuitBreaker::allow()
{
    std::lock_guard<std::mutex> lk(mu);
    switch (st) {
      case State::Closed:
        return true;
      case State::Open:
        if (--rejectionsLeft <= 0) {
            st = State::HalfOpen;
            probeInFlight = true;
            breakerCounter("half_open").add(1);
            return true; // this caller is the probe
        }
        breakerCounter("rejected").add(1);
        return false;
      case State::HalfOpen:
        if (!probeInFlight) {
            probeInFlight = true;
            return true;
        }
        breakerCounter("rejected").add(1);
        return false;
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    std::lock_guard<std::mutex> lk(mu);
    if (st == State::HalfOpen) {
        breakerCounter("closed").add(1);
    }
    st = State::Closed;
    failures = 0;
    probeInFlight = false;
}

void
CircuitBreaker::onFailure()
{
    std::lock_guard<std::mutex> lk(mu);
    obs::metrics::counter("runtime.failures." + name).add(1);
    if (st == State::HalfOpen) {
        // The probe failed: straight back to Open, fresh cool-down.
        st = State::Open;
        rejectionsLeft = opt.cooldownRejections;
        probeInFlight = false;
        breakerCounter("reopened").add(1);
        return;
    }
    if (st == State::Open)
        return; // failure reported by a forced (breaker-ignoring) run
    if (++failures >= opt.failureThreshold) {
        st = State::Open;
        rejectionsLeft = opt.cooldownRejections;
        breakerCounter("opened").add(1);
    }
}

CircuitBreaker::State
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lk(mu);
    return st;
}

int
CircuitBreaker::consecutiveFailures() const
{
    std::lock_guard<std::mutex> lk(mu);
    return failures;
}

void
CircuitBreaker::reset()
{
    std::lock_guard<std::mutex> lk(mu);
    st = State::Closed;
    failures = 0;
    rejectionsLeft = 0;
    probeInFlight = false;
}

CircuitBreaker&
BreakerRegistry::forKernel(const std::string& kernel_name)
{
    std::lock_guard<std::mutex> lk(mu);
    auto it = breakers.find(kernel_name);
    if (it == breakers.end()) {
        it = breakers
                 .emplace(kernel_name, std::make_unique<CircuitBreaker>(
                                           kernel_name, opt))
                 .first;
    }
    return *it->second;
}

void
BreakerRegistry::resetAll()
{
    std::lock_guard<std::mutex> lk(mu);
    for (auto& [name, b] : breakers)
        b->reset();
}

BreakerRegistry&
BreakerRegistry::global()
{
    static BreakerRegistry registry;
    return registry;
}

} // namespace runtime
} // namespace dtc
