/**
 * @file
 * Crash-safe training checkpoints.
 *
 * A checkpoint is one self-validating binary file holding everything
 * needed to resume training bitwise-identically: epochs completed,
 * the RNG cursor, the optimizer timestep, per-epoch loss/accuracy
 * history, and every layer's weights, bias, and Adam moments.
 *
 * Crash safety comes from the same discipline as formats/serialize:
 * magic + version + trailing FNV-1a checksum over the payload, and a
 * write protocol of temp file -> flush -> atomic std::rename.  A
 * crash mid-write leaves at worst a stale "*.tmp" file; the previous
 * checkpoint (and anything latestCheckpoint() can see) is never in a
 * half-written state.  Torn or bit-flipped files fail the checksum
 * and surface as DtcError{CorruptData}.
 *
 * Fault sites trainer.checkpoint.write / trainer.checkpoint.rename
 * let tests inject a crash at both dangerous moments.
 */
#ifndef DTC_RUNTIME_CHECKPOINT_H
#define DTC_RUNTIME_CHECKPOINT_H

#include <cstdint>
#include <string>
#include <vector>

#include "gnn/gcn.h"

namespace dtc {
namespace runtime {

/** Everything needed to resume a training run (see file comment). */
struct TrainerSnapshot
{
    int64_t epochsDone = 0;  ///< Completed epochs (resume start).
    int64_t adamT = 0;       ///< Optimizer steps taken so far.
    uint64_t rngState = 0;   ///< Weight-init Rng cursor (stateBits).
    Optimizer optimizer = Optimizer::Sgd;
    std::vector<double> loss;     ///< Per-epoch history so far.
    std::vector<double> accuracy; ///< Per-epoch history so far.
    std::vector<GcnLayerState> layers; ///< In forward order.
};

/**
 * Writes @p snap to @p path via temp-file + checksum + atomic rename.
 * Throws DtcError on I/O failure; never leaves @p path half-written.
 */
void writeCheckpoint(const std::string& path,
                     const TrainerSnapshot& snap);

/**
 * Reads a checkpoint written by writeCheckpoint().  Throws
 * DtcError{CorruptData} on bad magic, torn payload, or checksum
 * mismatch.
 */
TrainerSnapshot readCheckpoint(const std::string& path);

/** Canonical file name: <dir>/ckpt-<epochs_done, 6 digits>.dtc. */
std::string checkpointPath(const std::string& dir,
                           int64_t epochs_done);

/**
 * Path of the highest-epoch "ckpt-*.dtc" in @p dir, or "" when the
 * directory is missing or holds none.  Stale "*.tmp" files from a
 * crashed writer are ignored.
 */
std::string latestCheckpoint(const std::string& dir);

} // namespace runtime
} // namespace dtc

#endif // DTC_RUNTIME_CHECKPOINT_H
