/**
 * @file
 * Per-kernel circuit breakers.
 *
 * A kernel that fails persistently (bad interaction with one matrix
 * structure, exhausted resources, a latent bug surfaced by DTC_FAULT)
 * should stop being *tried* — every attempt costs a prepare and a
 * partial compute before the caller reroutes.  The breaker implements
 * the classic three-state machine per kernel:
 *
 *   Closed    — requests flow; K consecutive failures trip it Open.
 *   Open      — requests are rejected without touching the kernel;
 *               the runtime reroutes to the tuner's next-best
 *               candidate.  After `cooldownRejections` rejected
 *               probes the breaker half-opens.
 *   Half-open — exactly one probe request is let through.  Success
 *               closes the breaker (counters reset); failure re-opens
 *               it with a fresh cool-down.
 *
 * The cool-down is counted in *rejected requests*, not wall-clock —
 * a deliberate choice so breaker behaviour is deterministic under
 * DTC_FAULT-driven tests and identical across machine speeds.  Every
 * transition and rejection is tallied in obs::metrics under
 * runtime.breaker.{opened,reopened,half_open,closed,rejected} plus
 * per-kernel failure counters runtime.failures.<kernel>.
 */
#ifndef DTC_RUNTIME_BREAKER_H
#define DTC_RUNTIME_BREAKER_H

#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dtc {
namespace runtime {

/** Breaker tuning knobs (shared by every kernel's breaker). */
struct BreakerOptions
{
    /** Consecutive failures that trip Closed -> Open (the K). */
    int failureThreshold = 3;

    /** Rejected requests while Open before half-opening. */
    int cooldownRejections = 8;
};

/** One kernel's breaker (see file comment). */
class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    explicit CircuitBreaker(std::string kernel_name,
                            BreakerOptions opt = {});

    /**
     * True when a request may proceed.  In Open state this counts the
     * rejection toward the cool-down and half-opens when it elapses;
     * in HalfOpen only the first caller since half-opening gets true.
     */
    bool allow();

    /** Reports a successful execution (closes a half-open breaker). */
    void onSuccess();

    /** Reports a failed execution (may trip or re-open). */
    void onFailure();

    State state() const;

    /** Consecutive-failure count while Closed (diagnostics). */
    int consecutiveFailures() const;

    const std::string& kernelName() const { return name; }

    /** Back to a fresh Closed state. */
    void reset();

  private:
    mutable std::mutex mu;
    std::string name;
    BreakerOptions opt;
    State st = State::Closed;
    int failures = 0;         ///< Consecutive failures while Closed.
    int rejectionsLeft = 0;   ///< Cool-down remaining while Open.
    bool probeInFlight = false; ///< HalfOpen probe already granted.
};

/**
 * Process-wide breaker-per-kernel registry, keyed by kernel display
 * name.  Entries are never destroyed; references stay valid.
 */
class BreakerRegistry
{
  public:
    explicit BreakerRegistry(BreakerOptions opt = {}) : opt(opt) {}

    /** The breaker for @p kernel_name, created Closed on first use. */
    CircuitBreaker& forKernel(const std::string& kernel_name);

    /** Resets every breaker (tests / between unrelated workloads). */
    void resetAll();

    /** The process-wide registry used by Runtime by default. */
    static BreakerRegistry& global();

  private:
    std::mutex mu;
    BreakerOptions opt;
    std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers;
};

} // namespace runtime
} // namespace dtc

#endif // DTC_RUNTIME_BREAKER_H
