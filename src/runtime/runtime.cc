#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "common/cancel.h"
#include "common/check.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "kernels/reference.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dtc {
namespace runtime {

namespace {

/** True for failure codes worth retrying on the same kernel. */
bool
isTransient(ErrorCode code)
{
    return code == ErrorCode::ResourceExhausted;
}

/** True for codes that must unwind immediately (not kernel faults). */
bool
isAbort(ErrorCode code)
{
    return code == ErrorCode::DeadlineExceeded ||
           code == ErrorCode::Cancelled;
}

} // namespace

std::shared_ptr<const TuneResult>
Runtime::tune(const CsrMatrix& a, const TuneRequest& request,
              const CostModel& cm)
{
    DTC_TRACE_SCOPE("runtime.tune");
    return std::make_shared<const TuneResult>(
        tuneSpmm(a, request, cm));
}

Runtime::Runtime(const CsrMatrix& a_in, const CostModel& cm,
                 RuntimeOptions options, BreakerRegistry* breakers)
    : a(a_in), opt(std::move(options))
{
    tuned = tune(a, opt.tune, cm);
    initFromTuned(breakers);
}

Runtime::Runtime(const CsrMatrix& a_in,
                 std::shared_ptr<const TuneResult> tuned_in,
                 RuntimeOptions options, BreakerRegistry* breakers)
    : a(a_in), opt(std::move(options)), tuned(std::move(tuned_in))
{
    DTC_CHECK_MSG(tuned != nullptr, "tuned state must be non-null");
    initFromTuned(breakers);
}

void
Runtime::initFromTuned(BreakerRegistry* breakers)
{
    for (const TuneEntry& e : tuned->supportedEntries()) {
        // A requested precision narrows the chain to kinds that can
        // express it; the rest would only die at prepare() anyway.
        if (opt.precision &&
            !kernelSupportsPrecision(e.kind, *opt.precision))
            continue;
        Candidate c;
        c.kind = e.kind;
        c.name = e.name;
        c.precision = opt.precision
                          ? *opt.precision
                          : kernelTraits(e.kind).nativePrecision;
        candidates.push_back(std::move(c));
    }
    // Even "nothing supported" leaves the reference fallback, so the
    // runtime itself never refuses to construct.
    if (breakers) {
        breg = breakers;
    } else {
        ownedBreakers = std::make_unique<BreakerRegistry>(opt.breaker);
        breg = ownedBreakers.get();
    }
}

SpmmKernel*
Runtime::preparedKernel(Candidate& cand, RunReport& rep)
{
    if (cand.dead)
        return nullptr;
    if (cand.kernel && cand.kernel->prepared())
        return cand.kernel.get();
    DTC_TRACE_SCOPE("runtime.prepare");
    cand.kernel = opt.precision
                      ? makeKernelAt(cand.kind, *opt.precision)
                      : makeKernel(cand.kind);
    if (!cand.kernel) {
        cand.dead = true;
        RunAttempt att;
        att.kernel = cand.name;
        att.code = ErrorCode::Unsupported;
        att.detail = "kind cannot express requested precision";
        rep.failures.push_back(std::move(att));
        return nullptr;
    }
    const Refusal r = cand.kernel->prepare(a);
    if (!r.ok()) {
        // A refusal is the kernel's *modeled answer* for this matrix;
        // it will not change on retry — drop the candidate for good.
        cand.dead = true;
        RunAttempt att;
        att.kernel = cand.name;
        att.code = r.code;
        att.detail = "prepare refused: " + r.reason;
        rep.failures.push_back(std::move(att));
        return nullptr;
    }
    return cand.kernel.get();
}

void
Runtime::run(const DenseMatrix& b, DenseMatrix& c, RunReport* report)
{
    DTC_TRACE_SCOPE("runtime.run");
    DTC_CHECK_MSG(a.cols() == b.rows(),
                  "B has " << b.rows() << " rows, want " << a.cols());
    DTC_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(),
                  "C is " << c.rows() << "x" << c.cols() << ", want "
                          << a.rows() << "x" << b.cols());

    // Deadline token for the whole pipeline.  When neither a
    // wall-clock deadline nor the deterministic check-count hook is
    // armed, leave whatever token the caller installed in place.
    CancelToken token;
    int64_t deadline_ms = opt.deadlineMs;
    if (deadline_ms < 0) {
        const auto env_ms = env::readInt64(
            "DTC_DEADLINE_MS", 0, std::numeric_limits<int64_t>::max());
        deadline_ms = env_ms ? *env_ms : 0;
    }
    if (deadline_ms > 0)
        token.setDeadlineInMs(static_cast<double>(deadline_ms));
    if (opt.deadlineChecks > 0)
        token.expireAfterChecks(opt.deadlineChecks);
    const bool own_token = deadline_ms > 0 || opt.deadlineChecks > 0;
    cancel::ScopedCancel scope(own_token ? &token : cancel::current());

    static obs::Counter& runs = obs::metrics::counter("runtime.runs");
    runs.add(1);
    obs::ScopedTimerMs run_timer("runtime.run_ms");

    RunReport rep;
    const int max_attempts = std::max(1, opt.maxAttemptsPerKernel);

    // Two passes over the tuner's ranking: first honouring breakers,
    // then — if every closed/half-open path failed — forcing a probe
    // through open breakers rather than failing a servable request.
    for (const bool forced : {false, true}) {
        for (Candidate& cand : candidates) {
            cancel::poll();
            if (cand.dead)
                continue;
            CircuitBreaker& br = breg->forKernel(cand.name);
            if (!forced && !br.allow())
                continue; // quarantined: reroute to next-best
            SpmmKernel* kernel = preparedKernel(cand, rep);
            if (!kernel) {
                if (!forced)
                    br.onFailure();
                continue;
            }
            for (int attempt = 1; attempt <= max_attempts; ++attempt) {
                cancel::poll();
                ++rep.attempts;
                try {
                    DTC_TRACE_SCOPE("runtime.compute");
                    const double t0 = obs::monotonicNowUs();
                    DTC_FAULT_POINT(fault::sites::kRuntimeCompute);
                    kernel->compute(b, c);
                    obs::metrics::histogram("runtime.kernel_ms." +
                                            cand.name)
                        .record((obs::monotonicNowUs() - t0) / 1e3);
                } catch (const DtcError& err) {
                    if (isAbort(err.code()))
                        throw; // not the kernel's fault; no retry
                    RunAttempt att;
                    att.kernel = cand.name;
                    att.code = err.code();
                    att.detail = err.what();
                    rep.failures.push_back(std::move(att));
                    br.onFailure();
                    if (isTransient(err.code()) &&
                        attempt < max_attempts &&
                        br.state() == CircuitBreaker::State::Closed) {
                        ++rep.retries;
                        if (opt.retryBackoffBaseMs > 0.0) {
                            const double ms =
                                opt.retryBackoffBaseMs *
                                static_cast<double>(1 << (attempt - 1));
                            std::this_thread::sleep_for(
                                std::chrono::duration<double,
                                                      std::milli>(ms));
                        }
                        continue; // same kernel, next attempt
                    }
                    break; // reroute to next candidate
                }

                if (opt.postComputeHook)
                    opt.postComputeHook(cand.name, c);

                // Online result validation.  The disabled probe is
                // one relaxed atomic load (guard::enabled()).
                const bool guard_on =
                    opt.guard.sampleFraction < 0.0
                        ? guard::enabled()
                        : opt.guard.sampleFraction > 0.0;
                if (guard_on) {
                    DTC_TRACE_SCOPE("runtime.guard");
                    const guard::GuardResult g =
                        guard::checkSampledRows(a, b, c,
                                                cand.precision,
                                                opt.guard);
                    rep.guardRowsChecked += g.rowsChecked;
                    if (!g.ok()) {
                        RunAttempt att;
                        att.kernel = cand.name;
                        att.code = ErrorCode::CorruptData;
                        att.detail = g.detail;
                        att.guardMismatch = true;
                        rep.failures.push_back(std::move(att));
                        br.onFailure();
                        ++rep.reexecs;
                        obs::metrics::counter("runtime.guard.reexecs")
                            .add(1);
                        break; // full re-execution on next candidate
                    }
                }
                br.onSuccess();
                rep.kernel = cand.name;
                rep.precision = cand.precision;
                if (report)
                    *report = std::move(rep);
                return;
            }
        }
    }

    // Every registry kernel failed (or none was supported): the
    // double-accumulation reference is the terminal authority.  It
    // still honours the deadline via parallelFor/engine polls.
    {
        DTC_TRACE_SCOPE("runtime.reference_fallback");
        obs::metrics::counter("runtime.reference_fallbacks").add(1);
        referenceSpmm(a, b, c);
        ++rep.attempts;
        rep.kernel = "reference(double)";
        rep.usedReferenceFallback = true;
    }
    if (report)
        *report = std::move(rep);
}

DenseMatrix
Runtime::run(const DenseMatrix& b)
{
    DenseMatrix c(a.rows(), b.cols());
    run(b, c, nullptr);
    return c;
}

void
runWithDeadline(const CsrMatrix& a, const DenseMatrix& b,
                DenseMatrix& c, const CostModel& cm,
                int64_t deadline_ms, RunReport* report)
{
    RuntimeOptions opt;
    opt.deadlineMs = deadline_ms;
    Runtime rt(a, cm, std::move(opt));
    rt.run(b, c, report);
}

} // namespace runtime
} // namespace dtc
