/**
 * @file
 * Simulation-based Selector (paper Section 4.5).
 *
 * Deciding between DTC-SpMM-base (one thread block per row window)
 * and DTC-SpMM-balanced (strict TC-block balancing) is a Multiway
 * Number Partitioning question: does the input's distribution of TC
 * blocks across row windows leave SMs idle?  The Selector answers it
 * without running the kernel, by simulating the thread-block
 * scheduler (Eq. 1 policy model) over per-window TC-block counts:
 *
 *   makespan_base     = simulated max cumulative TC blocks on any SM
 *   makespan_balanced = NumTCBlocks / (numSms * occupancy)
 *   AR                = makespan_base / makespan_balanced
 *
 * The balanced kernel is chosen when AR exceeds a threshold (1.2 in
 * the paper, calibrated on 1000 uniformly random matrices where
 * strict balancing costs ~22.4% overhead).
 */
#ifndef DTC_SELECTOR_SELECTOR_H
#define DTC_SELECTOR_SELECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "formats/me_tcf.h"
#include "gpusim/arch.h"

namespace dtc {

/** The Selector's default AR threshold (paper value). */
constexpr double kSelectorArThreshold = 1.2;

/** Outcome of one Selector evaluation. */
struct SelectorDecision
{
    /** Simulated makespan of the base kernel, in TC-block units. */
    double makespanBase = 0.0;

    /** Ideal strict-balance makespan, in TC-block units. */
    double makespanBalanced = 0.0;

    /** AR = makespanBase / makespanBalanced. */
    double approximationRatio = 1.0;

    /** True when the balanced runtime kernel should be launched. */
    bool useBalanced = false;

    /**
     * True when the Selector could not evaluate the schedule (empty
     * matrix, zero-SM arch, …) and fell back to the base kernel;
     * `note` says why.  Degenerate inputs are a safe default, not an
     * error — only *invalid* inputs (negative counts) throw.
     */
    bool degenerate = false;

    /** Why the decision was degenerate (empty otherwise). */
    std::string note;
};

/** Evaluates the Selector on per-window TC-block counts. */
SelectorDecision selectKernel(const std::vector<int64_t>& blocks_per_window,
                              const ArchSpec& arch,
                              double threshold = kSelectorArThreshold);

/** Convenience overload reading the counts from an ME-TCF matrix. */
SelectorDecision selectKernel(const MeTcfMatrix& m, const ArchSpec& arch,
                              double threshold = kSelectorArThreshold);

} // namespace dtc

#endif // DTC_SELECTOR_SELECTOR_H
