#include "selector/selector.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "gpusim/scheduler.h"
#include "obs/metrics.h"

namespace dtc {

SelectorDecision
selectKernel(const std::vector<int64_t>& blocks_per_window,
             const ArchSpec& arch, double threshold)
{
    DTC_FAULT_POINT(fault::sites::kSelectorDecide);
    DTC_TRACE_SCOPE("selector.decide");
    obs::ScopedTimerMs timer("selector.decide_ms");
    static obs::Counter& decisions =
        obs::metrics::counter("selector.decisions");
    static obs::Counter& balanced =
        obs::metrics::counter("selector.balanced_chosen");
    decisions.add(1);
    DTC_CHECK_CODE(threshold > 0.0, ErrorCode::InvalidInput,
                   "selector threshold must be positive, got "
                       << threshold);
    SelectorDecision d;

    std::vector<double> costs(blocks_per_window.size());
    double total = 0.0;
    for (size_t i = 0; i < blocks_per_window.size(); ++i) {
        DTC_CHECK_CODE(blocks_per_window[i] >= 0,
                       ErrorCode::InvalidInput,
                       "negative TC-block count "
                           << blocks_per_window[i] << " in window "
                           << i);
        costs[i] = static_cast<double>(blocks_per_window[i]);
        total += costs[i];
    }
    if (total == 0.0) {
        // No TC blocks to balance: the base kernel trivially wins.
        d.degenerate = true;
        d.note = blocks_per_window.empty()
                     ? "empty schedule (no row windows)"
                     : "empty schedule (zero TC blocks)";
        return d;
    }
    if (arch.numSms <= 0 || arch.occupancy <= 0) {
        // A schedule cannot be simulated on a degenerate arch; fall
        // back to the base kernel rather than divide by zero.
        d.degenerate = true;
        d.note = "degenerate arch (numSms or occupancy not positive)";
        return d;
    }

    ScheduleResult sched =
        scheduleThreadBlocks(costs, arch.numSms, arch.occupancy);
    d.makespanBase = sched.makespanCycles;
    d.makespanBalanced =
        total / (static_cast<double>(arch.numSms) *
                 static_cast<double>(arch.occupancy));
    d.approximationRatio =
        d.makespanBalanced > 0.0 ? d.makespanBase / d.makespanBalanced
                                 : 1.0;
    d.useBalanced = d.approximationRatio > threshold;
    if (d.useBalanced)
        balanced.add(1);
    return d;
}

SelectorDecision
selectKernel(const MeTcfMatrix& m, const ArchSpec& arch,
             double threshold)
{
    std::vector<int64_t> blocks(static_cast<size_t>(m.numWindows()));
    for (int64_t w = 0; w < m.numWindows(); ++w)
        blocks[static_cast<size_t>(w)] = m.blocksInWindow(w);
    return selectKernel(blocks, arch, threshold);
}

} // namespace dtc
