/**
 * @file
 * Input-adaptive kernel tuner.
 *
 * The paper's Selector chooses *within* DTC-SpMM (base vs balanced).
 * Deployments also face the outer question — which SpMM library to
 * use for a given matrix at all (cf. the paper's Section 6 closing:
 * lighter-weight systems win when the matrix changes every call,
 * and "heuristic adaptability to input dynamics" is its own line of
 * work [6]).  The tuner answers it the same way the Selector does:
 * by *simulating* every candidate on the cost model and ranking,
 * amortizing one-time conversion cost over the expected number of
 * SpMM executions.
 */
#ifndef DTC_TUNER_TUNER_H
#define DTC_TUNER_TUNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "gpusim/cost_model.h"
#include "kernels/kernel.h"
#include "matrix/csr.h"

namespace dtc {

/** Tuning request. */
struct TuneRequest
{
    int64_t denseWidth = 128;

    /**
     * Expected SpMM executions over the matrix's lifetime; one-time
     * conversion cost is divided by this (iterative workloads make
     * heavy formats worthwhile, single-shot ones do not).
     */
    int64_t iterations = 1000;

    /** Candidate kernels (empty = the default general-SpMM set). */
    std::vector<KernelKind> candidates;
};

/** One candidate's evaluation. */
struct TuneEntry
{
    KernelKind kind;
    std::string name;
    bool supported = false;
    std::string reason;          ///< Skip reason if unsupported.
    /** Taxonomy code behind the skip (Internal if none applies). */
    ErrorCode refusal = ErrorCode::Internal;
    double spmmMs = 0.0;         ///< Simulated per-execution time.
    double conversionMs = 0.0;   ///< Simulated one-time conversion.
    double amortizedMs = 0.0;    ///< spmm + conversion/iterations.
};

/** Tuning outcome: entries sorted by amortized time, best first. */
struct TuneResult
{
    std::vector<TuneEntry> entries;

    /**
     * True when no requested candidate survived and the tuner
     * appended the terminal cuSPARSE-like fallback so best() still
     * returns a runnable kernel.
     */
    bool fallbackAppended = false;

    /**
     * The winning entry.  Guaranteed to exist for any tuneSpmm()
     * result (the tuner appends a terminal fallback when every
     * requested candidate is refused); throws a typed
     * DtcError(Unsupported) listing per-candidate reasons only if
     * even the fallback was refused.
     */
    const TuneEntry& best() const;

    /**
     * The supported entries in rank order (best first; possibly
     * empty).  This is the reroute chain the resilient runtime walks
     * when a kernel fails or its breaker is open.
     */
    std::vector<TuneEntry> supportedEntries() const;
};

/** Default candidate set for general SpMM. */
std::vector<KernelKind> defaultTuneCandidates();

/**
 * Evaluates every candidate kernel on @p m under @p cm and ranks by
 * amortized per-execution time.
 */
TuneResult tuneSpmm(const CsrMatrix& m, const TuneRequest& request,
                    const CostModel& cm);

} // namespace dtc

#endif // DTC_TUNER_TUNER_H
