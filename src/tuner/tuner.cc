#include "tuner/tuner.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/fault.h"
#include "common/fault_sites.h"
#include "formats/convert_cost.h"
#include "obs/metrics.h"

namespace dtc {

const TuneEntry&
TuneResult::best() const
{
    for (const TuneEntry& e : entries) {
        if (e.supported)
            return e;
    }
    // tuneSpmm() appends a terminal fallback, so this only triggers
    // when even the fallback was refused.  Surface every candidate's
    // skip reason so the caller can tell *why* nothing runs.
    std::ostringstream os;
    os << "no supported candidate kernel";
    for (const TuneEntry& e : entries)
        os << "; " << e.name << ": " << e.reason;
    throw DtcError(ErrorCode::Unsupported, os.str(),
                   ErrorContext{.component = "tuner"});
}

std::vector<TuneEntry>
TuneResult::supportedEntries() const
{
    std::vector<TuneEntry> out;
    for (const TuneEntry& e : entries)
        if (e.supported)
            out.push_back(e);
    return out;
}

std::vector<KernelKind>
defaultTuneCandidates()
{
    return {
        KernelKind::Dtc,      KernelKind::CuSparse,
        KernelKind::Sputnik,  KernelKind::SparseTir,
        KernelKind::Tcgnn,
    };
}

namespace {

/** One-time conversion cost of a kernel's storage format. */
double
conversionCost(KernelKind kind, const CsrMatrix& m,
               const CostModel& cm)
{
    switch (kind) {
      case KernelKind::Dtc:
      case KernelKind::DtcBase:
      case KernelKind::DtcBalanced:
        return meTcfConversionCost(m, cm).timeMs;
      case KernelKind::Tcgnn:
        // TC-GNN converts on the CPU (paper Section 6).
        return tcgnnCpuConversionMs(m);
      case KernelKind::CuSparse:
        return 0.0; // consumes CSR directly
      default: {
        // Other formats: one streaming rewrite of the matrix.
        const double bytes = static_cast<double>(m.nnz()) * 12.0;
        return bytes / (cm.arch().dramBwGBps * 1e9) * 1e3 * 3.0;
      }
    }
}

/**
 * Evaluates one candidate.  Never propagates: a refusal or a thrown
 * error becomes an unsupported entry with the skip reason and
 * taxonomy code recorded, so one faulty kernel cannot sink the whole
 * tuning pass.
 */
TuneEntry
evaluateCandidate(KernelKind kind, const CsrMatrix& m,
                  const TuneRequest& request, const CostModel& cm)
{
    TuneEntry entry;
    entry.kind = kind;
    entry.name = kernelKindName(kind);
    DTC_TRACE_SCOPE("tuner.candidate");
    static obs::Counter& evaluated =
        obs::metrics::counter("tuner.candidates_evaluated");
    static obs::Counter& refusals =
        obs::metrics::counter("tuner.refusals");
    evaluated.add(1);
    try {
        DTC_FAULT_POINT(fault::sites::kTunerPrepare);
        auto kernel = makeKernel(kind);
        const Refusal r = kernel->prepare(m);
        if (!r.ok()) {
            entry.refusal = r.code;
            entry.reason = r.reason;
            refusals.add(1);
            return entry;
        }
        entry.spmmMs = kernel->cost(request.denseWidth, cm).timeMs;
        entry.conversionMs = conversionCost(kind, m, cm);
        entry.amortizedMs =
            entry.spmmMs +
            entry.conversionMs /
                static_cast<double>(request.iterations);
        entry.supported = true;
    } catch (const DtcError& e) {
        entry.supported = false;
        entry.refusal = e.code();
        entry.reason = e.what();
        refusals.add(1);
    } catch (const std::exception& e) {
        entry.supported = false;
        entry.refusal = ErrorCode::Internal;
        entry.reason = e.what();
        refusals.add(1);
    }
    return entry;
}

} // namespace

TuneResult
tuneSpmm(const CsrMatrix& m, const TuneRequest& request,
         const CostModel& cm)
{
    DTC_CHECK(request.denseWidth > 0 && request.iterations > 0);
    DTC_TRACE_SCOPE("tuner.tune");
    obs::ScopedTimerMs timer("tuner.tune_ms");
    // Full-tuner invocations, distinct from per-candidate tallies:
    // the serving layer's warm path must leave this flat (see
    // Runtime::tune and serve::PreparedCache).
    obs::metrics::counter("tuner.tunes").add(1);
    const std::vector<KernelKind> candidates =
        request.candidates.empty() ? defaultTuneCandidates()
                                   : request.candidates;

    TuneResult result;
    for (KernelKind kind : candidates)
        result.entries.push_back(
            evaluateCandidate(kind, m, request, cm));

    const bool any_supported =
        std::any_of(result.entries.begin(), result.entries.end(),
                    [](const TuneEntry& e) { return e.supported; });
    if (!any_supported) {
        // Graceful degradation: every requested candidate was
        // refused, so append the terminal fallback — the
        // cuSPARSE-like kernel consumes CSR directly and supports
        // any well-formed matrix.  best() then still returns a
        // runnable kernel instead of throwing.
        TuneEntry fb = evaluateCandidate(KernelKind::CuSparse, m,
                                         request, cm);
        if (fb.supported) {
            fb.name += " (terminal fallback)";
            result.fallbackAppended = true;
            result.entries.push_back(std::move(fb));
            obs::metrics::counter("tuner.fallbacks_appended").add(1);
        }
    }

    std::stable_sort(result.entries.begin(), result.entries.end(),
                     [](const TuneEntry& a, const TuneEntry& b) {
                         if (a.supported != b.supported)
                             return a.supported;
                         return a.amortizedMs < b.amortizedMs;
                     });
    return result;
}

} // namespace dtc
