#include "tuner/tuner.h"

#include <algorithm>

#include "common/check.h"
#include "formats/convert_cost.h"

namespace dtc {

const TuneEntry&
TuneResult::best() const
{
    for (const TuneEntry& e : entries) {
        if (e.supported)
            return e;
    }
    DTC_CHECK_MSG(false, "no supported candidate kernel");
    throw std::logic_error("unreachable");
}

std::vector<KernelKind>
defaultTuneCandidates()
{
    return {
        KernelKind::Dtc,      KernelKind::CuSparse,
        KernelKind::Sputnik,  KernelKind::SparseTir,
        KernelKind::Tcgnn,
    };
}

namespace {

/** One-time conversion cost of a kernel's storage format. */
double
conversionCost(KernelKind kind, const CsrMatrix& m,
               const CostModel& cm)
{
    switch (kind) {
      case KernelKind::Dtc:
      case KernelKind::DtcBase:
      case KernelKind::DtcBalanced:
        return meTcfConversionCost(m, cm).timeMs;
      case KernelKind::Tcgnn:
        // TC-GNN converts on the CPU (paper Section 6).
        return tcgnnCpuConversionMs(m);
      case KernelKind::CuSparse:
        return 0.0; // consumes CSR directly
      default: {
        // Other formats: one streaming rewrite of the matrix.
        const double bytes = static_cast<double>(m.nnz()) * 12.0;
        return bytes / (cm.arch().dramBwGBps * 1e9) * 1e3 * 3.0;
      }
    }
}

} // namespace

TuneResult
tuneSpmm(const CsrMatrix& m, const TuneRequest& request,
         const CostModel& cm)
{
    DTC_CHECK(request.denseWidth > 0 && request.iterations > 0);
    const std::vector<KernelKind> candidates =
        request.candidates.empty() ? defaultTuneCandidates()
                                   : request.candidates;

    TuneResult result;
    for (KernelKind kind : candidates) {
        TuneEntry entry;
        entry.kind = kind;
        entry.name = kernelKindName(kind);

        auto kernel = makeKernel(kind);
        const std::string err = kernel->prepare(m);
        if (!err.empty()) {
            entry.reason = err;
            result.entries.push_back(std::move(entry));
            continue;
        }
        entry.supported = true;
        entry.spmmMs = kernel->cost(request.denseWidth, cm).timeMs;
        entry.conversionMs = conversionCost(kind, m, cm);
        entry.amortizedMs =
            entry.spmmMs +
            entry.conversionMs /
                static_cast<double>(request.iterations);
        result.entries.push_back(std::move(entry));
    }

    std::stable_sort(result.entries.begin(), result.entries.end(),
                     [](const TuneEntry& a, const TuneEntry& b) {
                         if (a.supported != b.supported)
                             return a.supported;
                         return a.amortizedMs < b.amortizedMs;
                     });
    return result;
}

} // namespace dtc
